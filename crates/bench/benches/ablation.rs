//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Interface minimization on/off** — how much speculative work the
//!    Sect. 3.4 delegation saves at recognition time (`fasta` has
//!    language-equivalent motif tails, so its interface shrinks).
//! 2. **Executor shape** — the paper's one-thread-per-chunk model vs a
//!    bounded dynamic team.
//! 3. **SFA comparator** — zero speculation, huge table (reference \[25\]).
//! 4. **Scan kernel** — per-run vs lockstep vs lockstep with shared
//!    block classification vs the SIMD kernel, on the longest-interface
//!    workload (`traffic`, 101 interface states), where fusing the `k`
//!    passes matters most; plus micro-ablations of the two SIMD
//!    building blocks (shuffle classification and the strided
//!    single-run walk) against their scalar twins. The harness writes
//!    the group's results to
//!    `target/criterion-shim/ablation_kernels.json`; the checked-in
//!    baseline lives at `crates/bench/baselines/ablation_kernels.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use ridfa_automata::{ConstructionBudget, NoCount};
use ridfa_bench::build_artifacts;
use ridfa_core::csdpa::kernel::{self, DenseTable, Scratch};
use ridfa_core::csdpa::{
    chunk_spans_snapped, plan, recognize, recognize_spans, ConvergentDfaCa, ConvergentRidCa, DfaCa,
    Executor, FeasibleRidCa, FeasibleTable, Kernel, RidCa,
};
use ridfa_core::ridfa::RiDfa;
use ridfa_core::sfa::{Sfa, SfaCa};
use ridfa_workloads::standard_benchmarks;

const TEXT_LEN: usize = 256 << 10;

fn bench_interface_minimization(c: &mut Criterion) {
    let fasta = standard_benchmarks()
        .into_iter()
        .find(|b| b.name == "fasta")
        .unwrap();
    let rid_raw = RiDfa::from_nfa(&fasta.nfa);
    let rid_min = rid_raw.minimized();
    assert!(
        rid_min.interface().len() < rid_raw.interface().len(),
        "fasta interface must shrink for this ablation to be meaningful"
    );
    let text = (fasta.accepted)(TEXT_LEN, 42);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut group = c.benchmark_group("ablation_interface_min");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(text.len() as u64));
    let ca_raw = RidCa::new(&rid_raw);
    let ca_min = RidCa::new(&rid_min);
    group.bench_function("raw_interface", |b| {
        b.iter(|| recognize(&ca_raw, &text, threads, Executor::Team(threads)).accepted);
    });
    group.bench_function("minimized_interface", |b| {
        b.iter(|| recognize(&ca_min, &text, threads, Executor::Team(threads)).accepted);
    });
    group.finish();
}

fn bench_executor_shape(c: &mut Criterion) {
    let bible = standard_benchmarks()
        .into_iter()
        .find(|b| b.name == "bible")
        .unwrap();
    let a = build_artifacts(&bible);
    let ca = RidCa::new(&a.rid);
    let text = (a.accepted)(TEXT_LEN, 42);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let chunks = threads * 4; // more chunks than workers: the shapes differ
    let mut group = c.benchmark_group("ablation_executor");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("per_chunk_threads", |b| {
        b.iter(|| recognize(&ca, &text, chunks, Executor::PerChunk).accepted);
    });
    group.bench_function("dynamic_team", |b| {
        b.iter(|| recognize(&ca, &text, chunks, Executor::Team(threads)).accepted);
    });
    group.bench_function("serial_executor", |b| {
        b.iter(|| recognize(&ca, &text, chunks, Executor::Serial).accepted);
    });
    group.finish();
}

fn bench_sfa_comparator(c: &mut Criterion) {
    // Small pattern: the SFA fits in memory, so the zero-speculation
    // trade-off can be measured directly.
    let bigdata = standard_benchmarks()
        .into_iter()
        .find(|b| b.name == "bigdata")
        .unwrap();
    let a = build_artifacts(&bigdata);
    let sfa = Sfa::build_limited(&a.dfa, 1 << 20).expect("bigdata SFA fits");
    let text = (a.accepted)(TEXT_LEN, 42);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut group = c.benchmark_group("ablation_sfa");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(text.len() as u64));
    let rid_ca = RidCa::new(&a.rid);
    let sfa_ca = SfaCa::new(&sfa);
    group.bench_function("rid", |b| {
        b.iter(|| recognize(&rid_ca, &text, threads, Executor::Team(threads)).accepted);
    });
    group.bench_function("sfa", |b| {
        b.iter(|| recognize(&sfa_ca, &text, threads, Executor::Team(threads)).accepted);
    });
    group.finish();
}

fn bench_convergence(c: &mut Criterion) {
    // The conclusion's "compatible with state-convergence" claim: lockstep
    // scanning with group merging, for both the DFA and RID variants, on
    // the winning benchmark where the DFA has the most runs to merge.
    let bible = standard_benchmarks()
        .into_iter()
        .find(|b| b.name == "bible")
        .unwrap();
    let a = build_artifacts(&bible);
    let text = (a.accepted)(TEXT_LEN, 42);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut group = c.benchmark_group("ablation_convergence");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(text.len() as u64));
    let dfa_plain = DfaCa::new(&a.dfa);
    let dfa_conv = ConvergentDfaCa::new(&a.dfa);
    let rid_plain = RidCa::new(&a.rid);
    let rid_conv = ConvergentRidCa::new(&a.rid);
    group.bench_function("dfa_plain", |b| {
        b.iter(|| recognize(&dfa_plain, &text, 32, Executor::Team(threads)).accepted);
    });
    group.bench_function("dfa_convergent", |b| {
        b.iter(|| recognize(&dfa_conv, &text, 32, Executor::Team(threads)).accepted);
    });
    group.bench_function("rid_plain", |b| {
        b.iter(|| recognize(&rid_plain, &text, 32, Executor::Team(threads)).accepted);
    });
    group.bench_function("rid_convergent", |b| {
        b.iter(|| recognize(&rid_conv, &text, 32, Executor::Team(threads)).accepted);
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    // The tentpole ablation: how much of the reach phase's speculation
    // overhead each kernel layer removes. `traffic` has the longest
    // interface of the standard benchmarks, so per-run scanning pays the
    // full k-pass cost and the lockstep layers have the most to merge.
    let traffic = standard_benchmarks()
        .into_iter()
        .find(|b| b.name == "traffic")
        .unwrap();
    let a = build_artifacts(&traffic);
    let text = (a.accepted)(TEXT_LEN, 42);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let chunks = threads * 2;
    let mut group = c.benchmark_group("ablation_kernels");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(text.len() as u64));
    for (label, kernel) in [
        ("per_run", Kernel::PerRun),
        ("lockstep", Kernel::Lockstep),
        ("lockstep_shared", Kernel::LockstepShared),
        ("simd", Kernel::Simd),
        ("auto", Kernel::Auto),
    ] {
        let ca = ConvergentRidCa::with_kernel(&a.rid, kernel);
        group.bench_function(label, |b| {
            b.iter(|| recognize(&ca, &text, chunks, Executor::Team(threads)).accepted);
        });
    }

    // Micro-ablations of the two SIMD building blocks against their
    // scalar twins, in the same group so the CI smoke can assert the
    // simd ≥ scalar floor from a single JSON. `bible` converges to one
    // live run almost immediately, so the single-run pair measures the
    // strided walk against the plain serial loop over the whole text.
    let bible = standard_benchmarks()
        .into_iter()
        .find(|b| b.name == "bible")
        .unwrap();
    let ab = build_artifacts(&bible);
    let btext = (ab.accepted)(TEXT_LEN, 42);
    let classes = ab.dfa.classes();
    let mut class_out = vec![0u8; btext.len()];
    group.bench_function("classify_scalar", |b| {
        b.iter(|| classes.classify_into_scalar(&btext, &mut class_out));
    });
    group.bench_function("classify_simd", |b| {
        b.iter(|| classes.classify_into(&btext, &mut class_out));
    });
    let ptable = ab.dfa.premultiplied_table();
    let table = DenseTable {
        ptable: &ptable,
        stride: ab.dfa.stride(),
        classes: ab.dfa.classes(),
    };
    let start = ab.dfa.start();
    let mut scratch = Scratch::default();
    let mut out = Vec::new();
    for (label, kernel) in [
        ("single_run_scalar", Kernel::PerRun),
        ("single_run_simd", Kernel::Simd),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                kernel::scan_into(
                    table,
                    std::iter::once((start, start)),
                    ab.dfa.num_states(),
                    &btext,
                    kernel,
                    &mut scratch,
                    &mut NoCount,
                    &mut out,
                )
            });
        });
    }
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    // The EnginePlan ablation: throughput of each first-class engine on
    // the workloads that pick it. `bigdata` is the convergent small
    // pattern where the Auto plan resolves to SFA (zero speculation must
    // beat the lockstep it replaces — CI asserts that floor); `bible`
    // and `traffic` have wide interfaces (26 and 121) whose trial SFA
    // builds trip the cap, so their Auto plan is feasible-start pruning,
    // benched both with even chunking and with record-separator snapped
    // spans (traffic texts are newline-framed syslog records).
    // Serial executor over the same chunk decomposition: at 256 KiB a
    // full thread team is memory-bound and every engine converges on the
    // bandwidth ceiling, hiding exactly the per-byte speculation cost
    // this ablation measures. Serial execution exposes the total reach
    // work (k speculative runs vs one SFA run vs the pruned subset).
    let chunks = 8;
    let budget = ConstructionBudget::with_max_states(plan::SFA_AUTO_MAX_STATES);
    let mut group = c.benchmark_group("ablation_engines");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for benchmark in standard_benchmarks() {
        if !matches!(benchmark.name, "bigdata" | "fasta" | "bible" | "traffic") {
            continue;
        }
        let a = build_artifacts(&benchmark);
        let text = (a.accepted)(TEXT_LEN, 42);
        group.throughput(Throughput::Bytes(text.len() as u64));
        let lockstep = ConvergentRidCa::new(&a.rid);
        group.bench_function(format!("{}_lockstep", a.name), |b| {
            b.iter(|| recognize(&lockstep, &text, chunks, Executor::Serial).accepted);
        });
        match Sfa::build_rid_budgeted(&a.rid, &budget) {
            Ok(sfa) => {
                let ca = SfaCa::new(&sfa);
                group.bench_function(format!("{}_sfa", a.name), |b| {
                    b.iter(|| recognize(&ca, &text, chunks, Executor::Serial).accepted);
                });
            }
            Err(_) => {
                // Function-space explosion: exactly why Auto falls back
                // to feasible-start on these workloads.
                assert!(
                    a.rid.interface().len() >= plan::FEASIBLE_MIN_INTERFACE,
                    "{}: SFA exploded but the interface is narrow — Auto would \
                     pick lockstep and this ablation loses its subject",
                    a.name
                );
            }
        }
        let table = FeasibleTable::build(&a.rid);
        let pruned = FeasibleRidCa::new(&a.rid, &table);
        group.bench_function(format!("{}_feasible", a.name), |b| {
            b.iter(|| recognize(&pruned, &text, chunks, Executor::Serial).accepted);
        });
        let mut spans = Vec::new();
        chunk_spans_snapped(&text, chunks, b'\n', &mut spans);
        group.bench_function(format!("{}_feasible_snapped", a.name), |b| {
            b.iter(|| recognize_spans(&pruned, &text, &spans, Executor::Serial).accepted);
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_interface_minimization,
    bench_executor_shape,
    bench_sfa_comparator,
    bench_convergence,
    bench_kernels,
    bench_engines
);
criterion_main!(benches);
