//! Cold-start bench behind the pattern registry: how long until a
//! pattern is *servable*?
//!
//! Three roads into a [`PatternRegistry`] are timed on the same
//! pattern (`[ab]*a[ab]{13}`, a powerset-hostile mask with ~2^14
//! subset states before minimization):
//!
//! * `construct_regex` — parse → Glushkov → powerset → minimize →
//!   premultiply, the full from-source pipeline;
//! * `construct_nfa` — the same minus parsing, starting from a built
//!   NFA (what `insert_nfa` does);
//! * `load_artifact` — decode a sealed `.rida` binary artifact with
//!   its premultiplied table already inside (what a prod deploy ships);
//! * `decode_only` — the raw `ridfa_from_bytes` decode, isolating the
//!   codec from registry bookkeeping (warm sessions, eviction ledger).
//!
//! Every road ends with the registry entry warm and the id removed
//! again, so each iteration is a true cold start. The acceptance bar
//! (ROADMAP / baseline `registry_cold_start.json`): `load_artifact`
//! at least 10× faster than `construct_nfa`.

use criterion::{criterion_group, criterion_main, Criterion};

use ridfa_automata::nfa::glushkov;
use ridfa_automata::regex;
use ridfa_core::csdpa::{PatternRegistry, RegistryConfig};
use ridfa_core::ridfa::{ridfa_from_bytes, ridfa_to_bytes, RiDfa};

const PATTERN: &str = "[ab]*a[ab]{13}";

fn bench_registry_cold_start(c: &mut Criterion) {
    let ast = regex::parse(PATTERN).unwrap();
    let nfa = glushkov::build(&ast).unwrap();
    let rid = RiDfa::from_nfa(&nfa).minimized();
    let artifact = ridfa_to_bytes(&rid);

    let mut reg = PatternRegistry::new(RegistryConfig {
        num_workers: 2,
        ..RegistryConfig::default()
    });

    let mut group = c.benchmark_group("registry_cold_start");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);

    group.bench_function("construct_regex", |b| {
        b.iter(|| {
            reg.insert_regex("p", PATTERN).unwrap();
            reg.remove("p")
        });
    });
    group.bench_function("construct_nfa", |b| {
        b.iter(|| {
            reg.insert_nfa("p", &nfa).unwrap();
            reg.remove("p")
        });
    });
    group.bench_function("load_artifact", |b| {
        b.iter(|| {
            reg.insert_artifact("p", &artifact).unwrap();
            reg.remove("p")
        });
    });
    group.bench_function("decode_only", |b| {
        b.iter(|| ridfa_from_bytes(&artifact).unwrap().rid.num_states());
    });
    group.finish();
}

criterion_group!(benches, bench_registry_cold_start);
criterion_main!(benches);
