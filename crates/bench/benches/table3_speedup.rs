//! Criterion bench behind Table 3: parallel recognition time of the three
//! CSDPA variants on every benchmark (scaled-down texts so `cargo bench`
//! stays CI-friendly; the table3 binary runs the full sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ridfa_bench::build_artifacts;
use ridfa_core::csdpa::{recognize, DfaCa, Executor, NfaCa, RidCa};
use ridfa_workloads::standard_benchmarks;

const TEXT_LEN: usize = 256 << 10;

fn bench_variants(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let executor = Executor::Team(threads);
    let mut group = c.benchmark_group("table3_speedup");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for b in standard_benchmarks() {
        let a = build_artifacts(&b);
        let text = (a.accepted)(TEXT_LEN, 42);
        group.throughput(Throughput::Bytes(text.len() as u64));
        let dfa_ca = DfaCa::new(&a.dfa);
        let nfa_ca = NfaCa::new(&a.nfa);
        let rid_ca = RidCa::new(&a.rid);
        group.bench_with_input(BenchmarkId::new("dfa", a.name), &text, |bench, text| {
            bench.iter(|| recognize(&dfa_ca, text, threads, executor).accepted);
        });
        group.bench_with_input(BenchmarkId::new("nfa", a.name), &text, |bench, text| {
            bench.iter(|| recognize(&nfa_ca, text, threads, executor).accepted);
        });
        group.bench_with_input(BenchmarkId::new("rid", a.name), &text, |bench, text| {
            bench.iter(|| recognize(&rid_ca, text, threads, executor).accepted);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
