//! Multiplexed-serving throughput smoke: a loopback [`Server`] over a
//! live [`PatternRegistry`], hammered by real TCP clients.
//!
//! One server process-local event loop, two patterns, one shared worker
//! pool. Each iteration pushes the same request volume (128 requests ×
//! 4 KiB bodies, mixed accept/reject) through two shapes:
//!
//! * `mux_8conn` — 8 concurrent client threads × 16 requests each: the
//!   multiplexed serving shape, connection setup included;
//! * `serial_1conn` — one connection, 128 pipelined request/response
//!   round trips: the no-concurrency reference.
//!
//! This is a *smoke* bench: the bar is that multiplexing 8 connections
//! stays within a small constant factor of the single-connection
//! reference — `mux_8conn` pays 8 TCP connects and 8 thread spawns per
//! iteration on top of the event-loop bookkeeping, so parity means the
//! loop is overlapping socket waits with recognition rather than
//! serializing on any one client. Results are recorded in
//! `crates/bench/baselines/serve_throughput.json`.
//!
//! A second group, `serve_sharded`, runs the identical 8-connection mux
//! workload against spec-built servers at `--shards 1` and `--shards 4`
//! (per-shard registry replicas, round-robin connection dealing). The
//! shard win is core-bound: on a multi-core box 4 shards should clear
//! ~2× the 1-shard figure; on a 1-core box the two are expected to be
//! within noise of each other (sharding only removes loop-level
//! serialization, it cannot mint CPUs). Results and the hardware note
//! live in `crates/bench/baselines/serve_sharded.json`.

use std::net::TcpStream;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use ridfa_automata::ConstructionBudget;
use ridfa_core::csdpa::{CancelToken, PatternRegistry, PatternSpec, RegistryConfig};
use ridfa_core::serve::protocol::{self, Status};
use ridfa_core::serve::{ServeConfig, Server};

const CONNS: usize = 8;
const REQS: usize = 16;
const BODY: usize = 4 << 10;

fn bench_serve_throughput(c: &mut Criterion) {
    let mut reg = PatternRegistry::new(RegistryConfig {
        num_workers: 2,
        ..RegistryConfig::default()
    });
    reg.insert_regex("digits", "[0-9]+").unwrap();
    reg.insert_regex("abb", "(a|b)*abb").unwrap();

    let mut server = Server::bind("127.0.0.1:0", reg, ServeConfig::default()).unwrap();
    let cancel = CancelToken::new();
    server.set_cancel(cancel.clone());
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run());

    let member = vec![b'7'; BODY];
    let stray = {
        let mut t = vec![b'7'; BODY];
        t[BODY / 2] = b'x';
        t
    };
    let run_requests = |stream: &mut TcpStream, n: usize| {
        for i in 0..n {
            let (body, want) = if i % 2 == 0 {
                (&member, Status::Accepted)
            } else {
                (&stray, Status::Rejected)
            };
            let response = protocol::query(stream, "digits", body).unwrap();
            assert_eq!(response.status, want);
        }
    };
    let connect = || {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
    };

    let mut group = c.benchmark_group("serve_throughput");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    group.throughput(Throughput::Bytes((CONNS * REQS * BODY) as u64));

    group.bench_function("mux_8conn", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for _ in 0..CONNS {
                    scope.spawn(|| run_requests(&mut connect(), REQS));
                }
            });
        });
    });
    group.bench_function("serial_1conn", |b| {
        let mut stream = connect();
        b.iter(|| run_requests(&mut stream, CONNS * REQS));
    });
    group.finish();

    cancel.cancel();
    server_thread.join().unwrap().unwrap();
}

/// The same mux workload against spec-built servers at 1 and 4 shards:
/// the only variable is the shard count, so the ratio isolates what
/// round-robin dealing over per-shard replicas buys on this hardware.
fn bench_serve_sharded(c: &mut Criterion) {
    let member = vec![b'7'; BODY];
    let stray = {
        let mut t = vec![b'7'; BODY];
        t[BODY / 2] = b'x';
        t
    };

    let mut group = c.benchmark_group("serve_sharded");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    group.throughput(Throughput::Bytes((CONNS * REQS * BODY) as u64));

    for shards in [1usize, 4] {
        let spec = PatternSpec::parse(
            "digits [0-9]+\nabb (a|b)*abb\n",
            &ConstructionBudget::UNLIMITED,
            None,
        )
        .unwrap();
        let mut server = Server::bind_spec(
            "127.0.0.1:0",
            spec,
            RegistryConfig {
                num_workers: 2,
                ..RegistryConfig::default()
            },
            ServeConfig {
                shards,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let cancel = CancelToken::new();
        server.set_cancel(cancel.clone());
        let addr = server.local_addr().unwrap();
        let server_thread = std::thread::spawn(move || server.run());

        group.bench_function(format!("mux_{CONNS}conn_{shards}shard"), |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for _ in 0..CONNS {
                        scope.spawn(|| {
                            let mut stream = TcpStream::connect(addr).unwrap();
                            stream
                                .set_read_timeout(Some(Duration::from_secs(30)))
                                .unwrap();
                            for i in 0..REQS {
                                let (body, want) = if i % 2 == 0 {
                                    (&member, Status::Accepted)
                                } else {
                                    (&stray, Status::Rejected)
                                };
                                let response =
                                    protocol::query(&mut stream, "digits", body).unwrap();
                                assert_eq!(response.status, want);
                            }
                        });
                    }
                });
            });
        });

        cancel.cancel();
        let report = server_thread.join().unwrap().unwrap();
        report.verify().unwrap_or_else(|e| panic!("{e}"));
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput, bench_serve_sharded);
criterion_main!(benches);
