//! Criterion bench behind Fig. 8: RID scaling with thread count and text
//! size (scaled down; the fig8 binary runs the full sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ridfa_bench::build_artifacts;
use ridfa_core::csdpa::{recognize, Executor, RidCa};
use ridfa_workloads::standard_benchmarks;

fn bench_thread_scaling(c: &mut Criterion) {
    let bible = standard_benchmarks()
        .into_iter()
        .find(|b| b.name == "bible")
        .unwrap();
    let a = build_artifacts(&bible);
    let text = (a.accepted)(512 << 10, 42);
    let rid_ca = RidCa::new(&a.rid);
    let mut group = c.benchmark_group("fig8_thread_scaling");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(text.len() as u64));
    let max = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut threads = 1usize;
    while threads <= max {
        group.bench_with_input(
            BenchmarkId::new("rid_bible", threads),
            &threads,
            |bench, &t| {
                bench.iter(|| recognize(&rid_ca, &text, t, Executor::Team(t)).accepted);
            },
        );
        threads *= 2;
    }
    group.finish();
}

fn bench_text_scaling(c: &mut Criterion) {
    let regexp = standard_benchmarks()
        .into_iter()
        .find(|b| b.name == "regexp")
        .unwrap();
    let a = build_artifacts(&regexp);
    let rid_ca = RidCa::new(&a.rid);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut group = c.benchmark_group("fig8_text_scaling");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.sample_size(10);
    for kb in [64usize, 128, 256, 512] {
        let text = (a.accepted)(kb << 10, 42);
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::new("rid_regexp", kb), &text, |bench, text| {
            bench.iter(|| recognize(&rid_ca, text, threads, Executor::Team(threads)).accepted);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling, bench_text_scaling);
criterion_main!(benches);
