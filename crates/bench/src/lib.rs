//! # ridfa-bench — the evaluation harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` for the
//! experiment index), plus criterion micro-benches under `benches/`.
//! This library holds the shared plumbing: artifact construction (NFA →
//! minimal DFA → minimized RI-DFA per benchmark), timing helpers, and
//! plain-text table rendering.

#![deny(unsafe_code)]

pub mod artifacts;
pub mod cli;
pub mod measure;
pub mod table;

pub use artifacts::{build_artifacts, Artifacts};
pub use cli::Args;
pub use measure::{median_duration, speedup};
pub use table::Table;
