//! Tiny argument parsing shared by the harness binaries (no external
//! dependency: flags are `--key value` pairs plus positionals).
//!
//! Grammar note: a `--flag` followed by a non-flag token greedily consumes
//! that token as its value, so boolean flags (`--full`) must be followed
//! by another flag or the end of the line — put positionals first.

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn parse() -> Args {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (for tests).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => Some(iter.next().unwrap()),
                    _ => None,
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(arg);
            }
        }
        Args { positional, flags }
    }

    /// `true` if `--name` was given (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// The value of `--name`, parsed.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
            .and_then(|v| v.parse().ok())
    }

    /// The value of `--name`, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name).unwrap_or(default)
    }

    /// Common flag: scale factor applied to text sizes (default 1.0 =
    /// laptop defaults; `--full` selects the paper sizes instead).
    pub fn scale(&self) -> f64 {
        self.get_or("scale", 1.0)
    }

    /// Common flag: benchmark seed.
    pub fn seed(&self) -> u64 {
        self.get_or("seed", 42)
    }

    /// Common flag: thread/chunk count; defaults to available parallelism.
    pub fn threads(&self) -> usize {
        self.get_or(
            "threads",
            std::thread::available_parallelism().map_or(4, |n| n.get()),
        )
    }

    /// Common flag: timing repetitions.
    pub fn reps(&self) -> usize {
        self.get_or("reps", 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::from_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positionals_and_flags() {
        let a = args(&["bible", "extra", "--threads", "8", "--full"]);
        assert_eq!(a.positional, vec!["bible", "extra"]);
        assert_eq!(a.get::<usize>("threads"), Some(8));
        assert!(a.has("full"));
        assert!(!a.has("missing"));
    }

    #[test]
    fn bare_flag_greedily_takes_next_positional() {
        // Documented quirk of the grammar: values attach greedily.
        let a = args(&["--full", "oops"]);
        assert!(a.has("full"));
        assert!(a.positional.is_empty());
    }

    #[test]
    fn defaults() {
        let a = args(&[]);
        assert_eq!(a.get_or("reps", 5usize), 5);
        assert!((a.scale() - 1.0).abs() < 1e-9);
        assert_eq!(a.seed(), 42);
        assert!(a.threads() >= 1);
    }

    #[test]
    fn flag_without_value_then_flag() {
        let a = args(&["--full", "--scale", "0.5"]);
        assert!(a.has("full"));
        assert!((a.scale() - 0.5).abs() < 1e-9);
    }
}
