//! Per-benchmark automata artifacts.

use std::time::{Duration, Instant};

use ridfa_automata::dfa::Dfa;
use ridfa_automata::dfa::{minimize, powerset};
use ridfa_automata::nfa::Nfa;
use ridfa_core::ridfa::RiDfa;
use ridfa_workloads::{Benchmark, Group};

/// All three chunk-automaton bases for one benchmark, with construction
/// timings (feeding the Sect. 4.5 comparison).
pub struct Artifacts {
    /// Benchmark name.
    pub name: &'static str,
    /// Expected outcome group.
    pub group: Group,
    /// The source NFA.
    pub nfa: Nfa,
    /// The minimal DFA (the classic CSDPA chunk automaton).
    pub dfa: Dfa,
    /// The interface-minimized RI-DFA (the RID chunk automaton).
    pub rid: RiDfa,
    /// Wall time of NFA → DFA → minimal DFA.
    pub dfa_build: Duration,
    /// Wall time of NFA → RI-DFA → interface minimization.
    pub rid_build: Duration,
    /// Accepted-text generator.
    pub accepted: fn(usize, u64) -> Vec<u8>,
    /// Default text length.
    pub default_len: usize,
    /// Paper text length.
    pub paper_len: usize,
}

/// Builds the artifacts of one benchmark.
pub fn build_artifacts(b: &Benchmark) -> Artifacts {
    let t0 = Instant::now();
    let dfa = minimize::minimize(&powerset::determinize(&b.nfa));
    let dfa_build = t0.elapsed();
    let t1 = Instant::now();
    let rid = RiDfa::from_nfa(&b.nfa).minimized();
    let rid_build = t1.elapsed();
    Artifacts {
        name: b.name,
        group: b.group,
        nfa: b.nfa.clone(),
        dfa,
        rid,
        dfa_build,
        rid_build,
        accepted: b.accepted,
        default_len: b.default_len,
        paper_len: b.paper_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ridfa_workloads::standard_benchmarks;

    #[test]
    fn artifacts_build_for_every_benchmark() {
        for b in standard_benchmarks() {
            let a = build_artifacts(&b);
            assert!(a.dfa.num_live_states() >= 1, "{}", a.name);
            assert!(
                a.rid.interface().len() <= a.nfa.num_states(),
                "{}: interface bounded by NFA",
                a.name
            );
        }
    }

    #[test]
    fn winning_benchmarks_have_state_blowup() {
        for b in standard_benchmarks() {
            let a = build_artifacts(&b);
            let ratio = a.dfa.num_live_states() as f64 / a.rid.interface().len() as f64;
            match a.group {
                Group::Winning => assert!(ratio > 2.0, "{}: ratio {ratio:.2}", a.name),
                Group::Even => assert!(ratio < 3.0, "{}: ratio {ratio:.2}", a.name),
            }
        }
    }
}
