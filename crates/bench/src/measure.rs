//! Timing helpers for the harness binaries.

use std::time::{Duration, Instant};

/// Runs `f` `reps` times (after one warm-up call) and returns the median
/// wall time. Medians resist the occasional scheduler hiccup better than
/// means on a noisy laptop.
pub fn median_duration(reps: usize, mut f: impl FnMut()) -> Duration {
    let reps = reps.max(1);
    f(); // warm-up: page in the text, warm the caches
    let mut samples: Vec<Duration> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// `speedup = baseline / candidate` (paper Fig. 8: speed of RID over the
/// speed of the other variant = time of other over time of RID).
pub fn speedup(baseline: Duration, candidate: Duration) -> f64 {
    let c = candidate.as_secs_f64();
    if c == 0.0 {
        return f64::INFINITY;
    }
    baseline.as_secs_f64() / c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_a_sample() {
        let d = median_duration(5, std::thread::yield_now);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn speedup_ratio() {
        let s = speedup(Duration::from_millis(300), Duration::from_millis(100));
        assert!((s - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_candidate_is_infinite() {
        assert!(speedup(Duration::from_millis(1), Duration::ZERO).is_infinite());
    }

    #[test]
    fn zero_reps_clamps_to_one() {
        let mut calls = 0;
        median_duration(0, || calls += 1);
        assert_eq!(calls, 2, "warm-up + one sample");
    }
}
