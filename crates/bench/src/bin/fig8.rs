//! Figure 8 — speedup of RID vs the DFA variant, as a function of the
//! number of threads (= chunks) and of the text size.
//!
//! ```text
//! cargo run -p ridfa-bench --bin fig8 --release -- bible threads    # Fig. 8a
//! cargo run -p ridfa-bench --bin fig8 --release -- regexp threads   # Fig. 8b
//! cargo run -p ridfa-bench --bin fig8 --release -- bible textsize   # Fig. 8c
//! cargo run -p ridfa-bench --bin fig8 --release -- regexp textsize  # Fig. 8d
//! cargo run -p ridfa-bench --bin fig8 --release                     # all four
//! ```
//!
//! Paper shapes: speedup *decreases* as a fixed text is cut into more
//! (shorter) chunks — per-chunk management overhead grows; speedup
//! *increases* with text length at a fixed chunk count. The paper sweeps
//! 2..=66 threads on a 64-core machine; sweep points beyond your core
//! count still run (threads multiplex) but measure oversubscription.

use ridfa_bench::table::{mb, ratio};
use ridfa_bench::{build_artifacts, median_duration, speedup, Args, Table};
use ridfa_core::csdpa::{recognize, DfaCa, Executor, RidCa};
use ridfa_workloads::standard_benchmarks;

fn main() {
    let args = Args::parse();
    let which: Option<&str> = args.positional.first().map(|s| s.as_str());
    let mode: Option<&str> = args.positional.get(1).map(|s| s.as_str());
    let reps = args.reps();

    for b in standard_benchmarks() {
        if !matches!(b.group, ridfa_workloads::Group::Winning) {
            continue;
        }
        if let Some(name) = which {
            if name != b.name {
                continue;
            }
        }
        let a = build_artifacts(&b);
        let dfa_ca = DfaCa::new(&a.dfa);
        let rid_ca = RidCa::new(&a.rid);
        let base = if args.has("full") {
            a.paper_len
        } else {
            (a.default_len as f64 * args.scale()) as usize
        };

        if mode.is_none() || mode == Some("threads") {
            // Fig. 8a/8b: fixed max text, sweep thread counts 2,10,…,66
            // (capped by --max-threads, default 2× the machine's cores).
            let text = (a.accepted)(base, args.seed());
            let max_threads: usize = args.get_or("max-threads", 2 * args.threads());
            println!(
                "Fig. 8 ({}, {} MB): speedup of RID vs DFA, sweeping threads",
                a.name,
                mb(text.len())
            );
            let mut table = Table::new(&["threads", "speedup DFA/RID", "RID reach (ms)"]);
            let mut c = 2usize;
            while c <= max_threads.max(2) {
                let executor = Executor::Team(c);
                let t_dfa = median_duration(reps, || {
                    recognize(&dfa_ca, &text, c, executor);
                });
                let t_rid = median_duration(reps, || {
                    recognize(&rid_ca, &text, c, executor);
                });
                table.row(&[
                    c.to_string(),
                    ratio(speedup(t_dfa, t_rid)),
                    format!("{:.2}", t_rid.as_secs_f64() * 1e3),
                ]);
                c += 8; // the paper's 2, 10, 18, … grid
            }
            table.print();
            println!();
        }

        if mode.is_none() || mode == Some("textsize") {
            // Fig. 8c/8d: fixed chunk count (the paper's 58), sweep text
            // sizes. The worker-team size follows the machine.
            let chunks: usize = args.get_or("chunks", 58);
            let threads = args.threads();
            println!(
                "Fig. 8 ({}, {} chunks, {} threads): speedup of RID vs DFA, sweeping text size",
                a.name, chunks, threads
            );
            let executor = Executor::Team(threads);
            let mut table = Table::new(&["text (MB)", "speedup DFA/RID", "RID reach (ms)"]);
            for step in 1..=6usize {
                let len = (base * step / 6).max(1024);
                let text = (a.accepted)(len, args.seed());
                let t_dfa = median_duration(reps, || {
                    recognize(&dfa_ca, &text, chunks, executor);
                });
                let t_rid = median_duration(reps, || {
                    recognize(&rid_ca, &text, chunks, executor);
                });
                table.row(&[
                    mb(text.len()),
                    ratio(speedup(t_dfa, t_rid)),
                    format!("{:.2}", t_rid.as_secs_f64() * 1e3),
                ]);
            }
            table.print();
            println!();
        }
    }
}
