//! Table 3 — speedup of RID vs the DFA and NFA variants of CSDPA, plus
//! transition ratios, at maximum text size.
//!
//! ```text
//! cargo run -p ridfa-bench --bin table3 --release [-- --threads N --full --reps R]
//! ```
//!
//! Paper shape to reproduce: `bigdata`, `fasta`, `traffic` *even*
//! (DFA/RID ≈ 1 ± 10% in both time and transitions); `bible`, `regexp`
//! *winning* (both ratios ≫ 1); the NFA variant loses everywhere by a
//! large factor. The paper ran 58 threads on a 64-core EPYC; scale
//! `--threads` to your machine — the *ratios* are what matters.

use ridfa_bench::table::{mb, ratio};
use ridfa_bench::{build_artifacts, median_duration, speedup, Args, Table};
use ridfa_core::csdpa::{recognize, recognize_counted, DfaCa, Executor, NfaCa, RidCa};
use ridfa_workloads::standard_benchmarks;

fn main() {
    let args = Args::parse();
    let threads = args.threads();
    // The paper cuts each text into 58 chunks (one per thread on its
    // 64-core box). Keep the chunk count at 58 regardless of local cores:
    // the variant-vs-variant ratios measure speculative *work*, which is
    // what must reproduce.
    let chunks: usize = args.get_or("chunks", 58);
    let reps = args.reps();
    let executor = Executor::Team(threads);

    println!(
        "Table 3: speedup of RID vs CSDPA variants ({} chunks, {} threads, {} reps, {} text sizes)",
        chunks,
        threads,
        reps,
        if args.has("full") { "paper" } else { "default" }
    );
    let mut table = Table::new(&[
        "benchmark",
        "group",
        "DFA/RID time",
        "NFA/RID time",
        "DFA/RID trans",
        "NFA/RID trans",
        "text (MB)",
    ]);

    for b in standard_benchmarks() {
        let a = build_artifacts(&b);
        let len = if args.has("full") {
            a.paper_len
        } else {
            (a.default_len as f64 * args.scale()) as usize
        };
        let text = (a.accepted)(len, args.seed());
        let dfa_ca = DfaCa::new(&a.dfa);
        let nfa_ca = NfaCa::new(&a.nfa);
        let rid_ca = RidCa::new(&a.rid);

        // Correctness cross-check before timing anything.
        let expect = a.dfa.accepts(&text);
        let rid_out = recognize(&rid_ca, &text, chunks, executor);
        let dfa_out = recognize(&dfa_ca, &text, chunks, executor);
        let nfa_out = recognize(&nfa_ca, &text, chunks, executor);
        assert!(
            expect && rid_out.accepted && dfa_out.accepted && nfa_out.accepted,
            "{}: all variants must accept the generated text",
            a.name
        );

        let t_dfa = median_duration(reps, || {
            recognize(&dfa_ca, &text, chunks, executor);
        });
        let t_nfa = median_duration(reps, || {
            recognize(&nfa_ca, &text, chunks, executor);
        });
        let t_rid = median_duration(reps, || {
            recognize(&rid_ca, &text, chunks, executor);
        });

        let c_dfa = recognize_counted(&dfa_ca, &text, chunks, executor).transitions;
        let c_nfa = recognize_counted(&nfa_ca, &text, chunks, executor).transitions;
        let c_rid = recognize_counted(&rid_ca, &text, chunks, executor).transitions;

        table.row(&[
            a.name.to_string(),
            format!("{:?}", a.group).to_lowercase(),
            ratio(speedup(t_dfa, t_rid)),
            ratio(speedup(t_nfa, t_rid)),
            ratio(c_dfa as f64 / c_rid.max(1) as f64),
            ratio(c_nfa as f64 / c_rid.max(1) as f64),
            mb(text.len()),
        ]);
    }
    table.print();
    println!("(speedup = exec time of variant / exec time of RID; paper Tab. 3)");
}
