//! Section 4.5 — construction time of RI-DFA vs DFA over the Ondrik
//! collection, and total state counts.
//!
//! ```text
//! cargo run -p ridfa-bench --bin construction --release [-- --machines N]
//! ```
//!
//! Paper numbers (full-scale collection): NFA→RI-DFA over NFA→DFA time
//! ratio ≈ 20 (far below the worst case of |Q|avg ≈ 2490 powersets);
//! total states NFA 2 699 411, DFA 1 485 483, RI-DFA 6 753 792. The
//! synthetic collection is smaller, but the *shape* must match: the time
//! ratio stays a small multiple, far below the per-machine state count,
//! and the RI-DFA state total exceeds the DFA total which is of the same
//! order as the NFA total.

use std::time::{Duration, Instant};

use ridfa_automata::dfa::powerset;
use ridfa_bench::{Args, Table};
use ridfa_core::ridfa;
use ridfa_workloads::ondrik::{collection, OndrikConfig};

fn main() {
    let args = Args::parse();
    let config = OndrikConfig {
        num_machines: args.get_or("machines", 1084),
        state_range: (args.get_or("min-states", 24), args.get_or("max-states", 96)),
        seed: args.seed(),
        ..OndrikConfig::default()
    };
    let dfa_budget: usize = args.get_or("dfa-budget", 50_000);

    let machines = collection(&config);
    let mut nfa_states = 0usize;
    let mut dfa_states = 0usize;
    let mut rid_states = 0usize;
    let mut rid_interface = 0usize;
    let mut t_dfa = Duration::ZERO;
    let mut t_rid = Duration::ZERO;
    let mut skipped = 0usize;

    for nfa in &machines {
        // Time the plain determinization.
        let t0 = Instant::now();
        let dfa = match powerset::determinize_limited(nfa, dfa_budget) {
            Ok(dfa) => dfa,
            Err(_) => {
                skipped += 1;
                continue;
            }
        };
        t_dfa += t0.elapsed();

        // Time the incremental RI-DFA construction + interface reduction.
        let t1 = Instant::now();
        let rid = ridfa::construct(nfa).minimized();
        t_rid += t1.elapsed();

        nfa_states += nfa.num_states();
        dfa_states += dfa.num_live_states();
        rid_states += rid.num_live_states();
        rid_interface += rid.interface().len();
    }

    println!(
        "Sect. 4.5: construction over {} machines ({} skipped: DFA > {})",
        machines.len(),
        skipped,
        dfa_budget
    );
    let mut table = Table::new(&["quantity", "NFA", "DFA", "RI-DFA"]);
    table.row(&[
        "total states".into(),
        nfa_states.to_string(),
        dfa_states.to_string(),
        rid_states.to_string(),
    ]);
    table.row(&[
        "total interface".into(),
        nfa_states.to_string(),
        dfa_states.to_string(),
        rid_interface.to_string(),
    ]);
    table.row(&[
        "construction time".into(),
        "-".into(),
        format!("{:.3} s", t_dfa.as_secs_f64()),
        format!("{:.3} s", t_rid.as_secs_f64()),
    ]);
    table.print();
    let ratio = t_rid.as_secs_f64() / t_dfa.as_secs_f64().max(1e-12);
    let avg_states = nfa_states as f64 / (machines.len() - skipped).max(1) as f64;
    println!(
        "time ratio RI-DFA / DFA = {ratio:.1}  (worst-case bound would be |Q|avg = {avg_states:.0})"
    );
}
