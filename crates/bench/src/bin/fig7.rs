//! Figure 7 — transition ratios (DFA/RI-DFA and NFA/RI-DFA) as a function
//! of text size, for the winning benchmarks, texts divided in 32 chunks.
//!
//! ```text
//! cargo run -p ridfa-bench --bin fig7 --release -- bible   # Fig. 7a
//! cargo run -p ridfa-bench --bin fig7 --release -- regexp  # Fig. 7b
//! cargo run -p ridfa-bench --bin fig7 --release            # both + even group
//! ```
//!
//! Paper shape: both ratios ≫ 1 for `bible`/`regexp` and nearly
//! independent of text length; ≈ 1 for the even group (which the paper
//! omits from the plots as uninformative).

use ridfa_bench::table::{mb, ratio};
use ridfa_bench::{build_artifacts, Args, Table};
use ridfa_core::csdpa::{recognize_counted, DfaCa, Executor, NfaCa, RidCa};
use ridfa_workloads::standard_benchmarks;

/// The paper's mid-range chunk count for this figure.
const CHUNKS: usize = 32;

fn main() {
    let args = Args::parse();
    let only: Option<&str> = args.positional.first().map(|s| s.as_str());
    let executor = Executor::Team(args.threads());

    for b in standard_benchmarks() {
        if let Some(name) = only {
            if name != b.name {
                continue;
            }
        }
        let a = build_artifacts(&b);
        let dfa_ca = DfaCa::new(&a.dfa);
        let nfa_ca = NfaCa::new(&a.nfa);
        let rid_ca = RidCa::new(&a.rid);
        println!(
            "Fig. 7 series for {} ({} chunks): ratio of transition counts over RI-DFA",
            a.name, CHUNKS
        );
        let mut table = Table::new(&["text (MB)", "DFA/RID", "NFA/RID", "RID transitions"]);
        let base = if args.has("full") {
            a.paper_len
        } else {
            (a.default_len as f64 * args.scale()) as usize
        };
        // Six sizes, as in the paper's plots.
        for step in 1..=6usize {
            let len = base * step / 6;
            let text = (a.accepted)(len.max(1024), args.seed());
            let c_dfa = recognize_counted(&dfa_ca, &text, CHUNKS, executor).transitions;
            let c_nfa = recognize_counted(&nfa_ca, &text, CHUNKS, executor).transitions;
            let c_rid = recognize_counted(&rid_ca, &text, CHUNKS, executor).transitions;
            table.row(&[
                mb(text.len()),
                ratio(c_dfa as f64 / c_rid.max(1) as f64),
                ratio(c_nfa as f64 / c_rid.max(1) as f64),
                c_rid.to_string(),
            ]);
        }
        table.print();
        println!();
    }
}
