//! Table 1 — the benchmark inventory.
//!
//! ```text
//! cargo run -p ridfa-bench --bin table1 --release
//! ```
//!
//! Prints, per benchmark: the number of NFAs, NFA states, the minimal-DFA
//! and RI-DFA sizes our constructions produce, and the default / paper
//! text lengths.

use ridfa_bench::table::mb;
use ridfa_bench::{build_artifacts, Args, Table};
use ridfa_workloads::ondrik::OndrikConfig;
use ridfa_workloads::standard_benchmarks;

fn main() {
    let args = Args::parse();
    let mut table = Table::new(&[
        "name",
        "NFAs",
        "NFA states",
        "min-DFA",
        "RI-DFA states",
        "interface",
        "text (MB)",
        "paper text (MB)",
    ]);
    for b in standard_benchmarks() {
        let a = build_artifacts(&b);
        table.row(&[
            a.name.to_string(),
            "1".into(),
            a.nfa.num_states().to_string(),
            a.dfa.num_live_states().to_string(),
            a.rid.num_live_states().to_string(),
            a.rid.interface().len().to_string(),
            mb(a.default_len),
            mb(a.paper_len),
        ]);
    }
    let ondrik = OndrikConfig::default();
    table.row(&[
        "ondrik".into(),
        ondrik.num_machines.to_string(),
        format!("{}-{} (range)", ondrik.state_range.0, ondrik.state_range.1),
        "-".into(),
        "-".into(),
        "-".into(),
        "none".into(),
        "none".into(),
    ]);
    println!("Table 1: benchmarks (synthetic stand-ins, see DESIGN.md)");
    table.print();
    if args.has("verbose") {
        println!("\npatterns:");
        println!(
            "  regexp : (a|b)*a(a|b)^{}",
            ridfa_workloads::spec::REGEXP_K
        );
        println!("  bible  : {}", ridfa_workloads::bible::pattern());
        println!("  fasta  : {}", ridfa_workloads::fasta::pattern());
        println!("  traffic: {}", ridfa_workloads::traffic::pattern());
        println!("  bigdata: {}", ridfa_workloads::bigdata::ast());
    }
}
