//! Table 2 — distribution of the Ondrik machines with respect to the
//! number of initial states.
//!
//! ```text
//! cargo run -p ridfa-bench --bin table2 --release [-- --machines N --min-states A --max-states B]
//! ```
//!
//! For every machine of the (synthetic) Ondrik collection this computes
//! the ratio of NFA states over minimal-DFA states, and of RI-DFA
//! *interface* states (after interface minimization) over minimal-DFA
//! states, then buckets both into the paper's 0.1-wide intervals.
//!
//! Paper shape to reproduce: *all* RI-DFA ratios < 1 (the interface never
//! exceeds the DFA), the bulk of the mass in the low buckets, and a small
//! NFA tail above 1.

use ridfa_automata::dfa::{minimize, powerset};
use ridfa_bench::{Args, Table};
use ridfa_core::ridfa::RiDfa;
use ridfa_workloads::ondrik::{collection, OndrikConfig};

fn main() {
    let args = Args::parse();
    let defaults = OndrikConfig::default();
    let config = OndrikConfig {
        num_machines: args.get_or("machines", 1084),
        state_range: (args.get_or("min-states", 24), args.get_or("max-states", 96)),
        density_percent: args.get_or("density", defaults.density_percent),
        jump_percent: args.get_or("jump", defaults.jump_percent),
        gadget_percent: args.get_or("gadget", defaults.gadget_percent),
        duplicate_percent_max: args.get_or("dup", defaults.duplicate_percent_max),
        final_percent: args.get_or("finals", defaults.final_percent),
        seed: args.seed(),
        ..defaults
    };
    // Machines whose powerset would explode past this bound are skipped
    // and reported (the real collection is curated similarly).
    let dfa_budget: usize = args.get_or("dfa-budget", 50_000);

    let mut nfa_buckets = Buckets::default();
    let mut rid_buckets = Buckets::default();
    let mut skipped = 0usize;
    let machines = collection(&config);
    for nfa in &machines {
        let Ok(dfa) = powerset::determinize_limited(nfa, dfa_budget) else {
            skipped += 1;
            continue;
        };
        let min = minimize::minimize(&dfa);
        let dfa_states = min.num_live_states();
        if dfa_states == 0 {
            skipped += 1;
            continue;
        }
        let rid = RiDfa::from_nfa(nfa).minimized();
        nfa_buckets.add(nfa.num_states() as f64 / dfa_states as f64);
        rid_buckets.add(rid.interface().len() as f64 / dfa_states as f64);
    }

    println!(
        "Table 2: initial-state ratio distribution over {} machines ({} skipped: DFA > {} states)",
        machines.len(),
        skipped,
        dfa_budget
    );
    let mut table = Table::new(&["interval", "NFA", "RI-DFA"]);
    for (label, n, r) in nfa_buckets.rows(&rid_buckets) {
        table.row(&[label, n.to_string(), r.to_string()]);
    }
    table.print();
    let measured = machines.len() - skipped;
    println!(
        "subtotal < 1: NFA {} ({:.1}%)   RI-DFA {} ({:.1}%)",
        nfa_buckets.below_one(),
        100.0 * nfa_buckets.below_one() as f64 / measured.max(1) as f64,
        rid_buckets.below_one(),
        100.0 * rid_buckets.below_one() as f64 / measured.max(1) as f64,
    );
    println!(
        "subtotal ≥ 1: NFA {} ({:.1}%)   RI-DFA {} ({:.1}%)",
        nfa_buckets.at_least_one(),
        100.0 * nfa_buckets.at_least_one() as f64 / measured.max(1) as f64,
        rid_buckets.at_least_one(),
        100.0 * rid_buckets.at_least_one() as f64 / measured.max(1) as f64,
    );
}

/// The paper's 0.1-wide intervals, plus open-ended end buckets so no
/// machine is silently dropped.
#[derive(Default)]
struct Buckets {
    below_half: usize,
    tenths: [usize; 9], // 0.5–0.6 … 1.3–1.4
    above: usize,
}

impl Buckets {
    fn add(&mut self, ratio: f64) {
        if ratio < 0.5 {
            self.below_half += 1;
        } else if ratio >= 1.4 {
            self.above += 1;
        } else {
            let idx = ((ratio - 0.5) / 0.1).floor() as usize;
            self.tenths[idx.min(8)] += 1;
        }
    }

    fn below_one(&self) -> usize {
        self.below_half + self.tenths[..5].iter().sum::<usize>()
    }

    fn at_least_one(&self) -> usize {
        self.tenths[5..].iter().sum::<usize>() + self.above
    }

    fn rows(&self, other: &Buckets) -> Vec<(String, usize, usize)> {
        let mut rows = vec![("< 0.5".to_string(), self.below_half, other.below_half)];
        for i in 0..9 {
            let lo = 0.5 + 0.1 * i as f64;
            rows.push((
                format!("{:.1} - {:.1}", lo, lo + 0.1),
                self.tenths[i],
                other.tenths[i],
            ));
        }
        rows.push(("≥ 1.4".to_string(), self.above, other.above));
        rows
    }
}
