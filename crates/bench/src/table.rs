//! Plain-text table rendering for the harness binaries, mimicking the
//! paper's tables closely enough to compare side by side.

/// A simple left-padded text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table with column-wise alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(&" ".repeat(widths[i] - cell.len()));
                line.push_str(cell);
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a byte count as MB with two decimals (paper convention).
pub fn mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a ratio with two decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with(" 1"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_checked() {
        let mut t = Table::new(&["one"]);
        t.row(&["a".into(), "b".into()]);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(mb(4 << 20), "4.00");
        assert_eq!(ratio(1.234), "1.23");
    }
}
