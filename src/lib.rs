//! # ridfa — minimizing speculation overhead in a parallel recognizer for regular texts
//!
//! Facade crate re-exporting the full public API of the workspace:
//!
//! * [`automata`] — regular expressions, NFA, DFA, powerset, Hopcroft
//!   (crate `ridfa-automata`);
//! * [`core`] — the RI-DFA chunk automaton, interface minimization, and the
//!   speculative data-parallel recognizer with its DFA / NFA / RI-DFA
//!   variants (crate `ridfa-core`);
//! * [`workloads`] — the benchmark generators of the paper's evaluation
//!   (crate `ridfa-workloads`).
//!
//! See `README.md` for a guided tour and `examples/` for runnable programs.

pub mod faults;

pub use ridfa_automata as automata;
pub use ridfa_core as core;
pub use ridfa_workloads as workloads;
