//! Deterministic fault injection for the chaos suite (`tests/chaos.rs`)
//! and the adversarial-reader matrix of `tests/stream.rs`.
//!
//! Everything here is deterministic by construction: readers fail at
//! exact byte offsets, the panic-injecting chunk automaton fires on an
//! exact scan ordinal, and the only randomness available is the seeded
//! [`XorShift64`] generator. Re-running a failing test reproduces the
//! same fault schedule.
//!
//! The module is compiled into the library (not `#[cfg(test)]`) so both
//! the integration tests of this crate and downstream robustness
//! harnesses can reuse it; it has no effect on the recognition paths
//! unless explicitly wired in.

use std::io::{self, Read};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ridfa_automata::counter::Counter;
use ridfa_core::csdpa::{budget::InterruptProbe, ChunkAutomaton};
use ridfa_core::parallel::ThreadPool;

/// A reader that hands out at most `max` bytes per `read` call —
/// exercises the short-read retry loop of the streaming block filler
/// (1-byte readers, block-misaligned pipes).
pub struct ShortReader<R> {
    inner: R,
    max: usize,
}

impl<R: Read> ShortReader<R> {
    /// Wraps `inner`, delivering at most `max` (≥ 1) bytes per call.
    pub fn new(inner: R, max: usize) -> ShortReader<R> {
        ShortReader {
            inner,
            max: max.max(1),
        }
    }
}

impl<R: Read> Read for ShortReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.max.min(buf.len());
        self.inner.read(&mut buf[..n])
    }
}

/// A reader that stalls: before every successful read it returns `burst`
/// consecutive [`io::ErrorKind::Interrupted`] errors — the one error kind
/// the streaming layer must retry, per POSIX `EINTR` semantics.
pub struct StallingReader<R> {
    inner: R,
    burst: usize,
    remaining: usize,
}

impl<R: Read> StallingReader<R> {
    /// Wraps `inner`, injecting `burst` interrupts before each read.
    pub fn new(inner: R, burst: usize) -> StallingReader<R> {
        StallingReader {
            inner,
            burst,
            remaining: burst,
        }
    }
}

impl<R: Read> Read for StallingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.remaining > 0 {
            self.remaining -= 1;
            return Err(io::Error::new(io::ErrorKind::Interrupted, "injected stall"));
        }
        self.remaining = self.burst;
        self.inner.read(buf)
    }
}

/// A reader that fails with a chosen [`io::ErrorKind`] after delivering
/// exactly `deliver` bytes — the mid-stream I/O fault. The error repeats
/// on every subsequent call (a broken pipe stays broken).
pub struct FailingReader<R> {
    inner: R,
    deliver: usize,
    delivered: usize,
    kind: io::ErrorKind,
}

impl<R: Read> FailingReader<R> {
    /// Wraps `inner`, failing with `kind` once `deliver` bytes went out.
    pub fn new(inner: R, deliver: usize, kind: io::ErrorKind) -> FailingReader<R> {
        FailingReader {
            inner,
            deliver,
            delivered: 0,
            kind,
        }
    }

    /// A reader failing with [`io::ErrorKind::WouldBlock`] — the
    /// canonical *non*-retryable kind a non-blocking fd surfaces.
    pub fn would_block(inner: R, deliver: usize) -> FailingReader<R> {
        FailingReader::new(inner, deliver, io::ErrorKind::WouldBlock)
    }
}

impl<R: Read> Read for FailingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let left = self.deliver - self.delivered.min(self.deliver);
        if left == 0 {
            return Err(io::Error::new(self.kind, "injected I/O fault"));
        }
        let cap = left.min(buf.len());
        let n = self.inner.read(&mut buf[..cap])?;
        self.delivered += n;
        Ok(n)
    }
}

/// A chunk-automaton wrapper that panics on the `panic_on`-th interior
/// scan (1-based, counted across all calls) and behaves identically to
/// the wrapped CA otherwise. Exactly one panic fires, so the automaton
/// can keep serving requests afterwards — proving the session survived.
pub struct PanicCa<CA> {
    inner: CA,
    panic_on: usize,
    scans: AtomicUsize,
}

impl<CA> PanicCa<CA> {
    /// Wraps `inner`; the `panic_on`-th interior scan (1-based) panics.
    /// `panic_on == 0` never fires.
    pub fn new(inner: CA, panic_on: usize) -> PanicCa<CA> {
        PanicCa {
            inner,
            panic_on,
            scans: AtomicUsize::new(0),
        }
    }

    /// Interior scans attempted so far (including the panicking one).
    pub fn scans(&self) -> usize {
        self.scans.load(Ordering::SeqCst)
    }
}

impl<CA: ChunkAutomaton> ChunkAutomaton for PanicCa<CA> {
    type Mapping = CA::Mapping;
    type Scratch = CA::Scratch;
    type ComposeScratch = CA::ComposeScratch;

    fn scan_into(
        &self,
        chunk: &[u8],
        scratch: &mut Self::Scratch,
        counter: &mut impl Counter,
        out: &mut Self::Mapping,
    ) {
        let ordinal = self.scans.fetch_add(1, Ordering::SeqCst) + 1;
        if ordinal == self.panic_on {
            panic!("injected fault: interior scan #{ordinal}");
        }
        self.inner.scan_into(chunk, scratch, counter, out)
    }

    fn scan_first_into(&self, chunk: &[u8], counter: &mut impl Counter, out: &mut Self::Mapping) {
        self.inner.scan_first_into(chunk, counter, out)
    }

    fn compose_into(
        &self,
        left: &Self::Mapping,
        right: &Self::Mapping,
        scratch: &mut Self::ComposeScratch,
        out: &mut Self::Mapping,
    ) {
        self.inner.compose_into(left, right, scratch, out)
    }

    fn accepts_mapping(&self, mapping: &Self::Mapping) -> bool {
        self.inner.accepts_mapping(mapping)
    }

    fn mapping_is_dead(&self, mapping: &Self::Mapping) -> bool {
        self.inner.mapping_is_dead(mapping)
    }

    fn arm_interrupt(&self, scratch: &mut Self::Scratch, probe: Option<&InterruptProbe>) {
        self.inner.arm_interrupt(scratch, probe)
    }

    fn accepts_serial(&self, text: &[u8], counter: &mut impl Counter) -> bool {
        self.inner.accepts_serial(text, counter)
    }

    fn num_speculative_starts(&self) -> usize {
        self.inner.num_speculative_starts()
    }

    fn name(&self) -> &'static str {
        "faulty"
    }
}

/// A panic payload whose `Drop` panics *again* (when not already
/// unwinding): the untrappable-panic vector. A worker that catches a job
/// panic carrying this payload dies when it drops the payload — the only
/// way to kill a [`ThreadPool`] worker, exercising the self-healing path.
pub struct WorkerKiller;

impl Drop for WorkerKiller {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            panic!("worker-killer payload dropped outside a panic");
        }
    }
}

/// Kills `n` pool workers by submitting [`WorkerKiller`] jobs through
/// [`ThreadPool::execute`], waiting (bounded) until each death registers
/// in [`ThreadPool::health`]. Panics if a death fails to register within
/// 10 s.
///
/// Keep `n` below the pool's live worker count: a pool with zero live
/// workers never claims the next killer job.
pub fn kill_workers(pool: &ThreadPool, n: usize) {
    // `live` alone cannot observe a death: dispatch heals the pool, so a
    // respawn can mask the drop. Total deaths (healed + still dead) is
    // monotonic and registers every kill exactly once.
    let deaths = |pool: &ThreadPool| {
        let health = pool.health();
        health.respawns + (health.configured - health.live) as u64
    };
    for k in 0..n {
        assert!(pool.health().live > 0, "no live worker left to kill");
        let deaths_before = deaths(pool);
        pool.execute(|| std::panic::panic_any(WorkerKiller));
        assert!(
            wait_until(|| deaths(pool) > deaths_before),
            "worker death {k} did not register within the wait bound"
        );
    }
}

/// Spins (yielding) until `cond` holds, for at most 10 seconds. Returns
/// whether the condition was met — callers assert on it.
pub fn wait_until(mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        if Instant::now() > deadline {
            return false;
        }
        std::thread::yield_now();
    }
    true
}

/// A regex whose powerset DFA holds ≥ 2^k states: `[ab]*a[ab]{k}`. Feed
/// it to a budgeted construction to exhaust a state/byte cap
/// deterministically (the blow-up is structural, not input-dependent).
pub fn state_explosion_pattern(k: usize) -> String {
    format!("[ab]*a[ab]{{{k}}}")
}

/// A tiny deterministic xorshift64 generator for seeded schedule
/// perturbation — no dependency on any external RNG crate.
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator (`0` is mapped to a fixed non-zero seed).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// A pseudo-random value in `0..n` (`n` ≥ 1).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn short_reader_caps_every_read() {
        let mut r = ShortReader::new(Cursor::new(vec![7u8; 100]), 3);
        let mut buf = [0u8; 64];
        assert_eq!(r.read(&mut buf).unwrap(), 3);
    }

    #[test]
    fn stalling_reader_interrupts_then_delivers() {
        let mut r = StallingReader::new(Cursor::new(vec![1u8; 4]), 2);
        let mut buf = [0u8; 4];
        for _ in 0..2 {
            assert_eq!(
                r.read(&mut buf).unwrap_err().kind(),
                io::ErrorKind::Interrupted
            );
        }
        assert_eq!(r.read(&mut buf).unwrap(), 4);
    }

    #[test]
    fn failing_reader_fails_at_exact_offset() {
        let mut r = FailingReader::would_block(Cursor::new(vec![1u8; 100]), 10);
        let mut buf = [0u8; 64];
        let mut got = 0;
        loop {
            match r.read(&mut buf) {
                Ok(n) => got += n,
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::WouldBlock);
                    break;
                }
            }
        }
        assert_eq!(got, 10);
        // The fault is persistent.
        assert!(r.read(&mut buf).is_err());
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert!(XorShift64::new(0).below(10) < 10);
    }
}
