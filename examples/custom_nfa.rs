//! Bring your own automaton: build an NFA programmatically, persist it in
//! the text format, reload it, and recognize with the RID device — the
//! workflow for benchmark collections (like Ondrik) that ship automata
//! rather than regular expressions.
//!
//! ```text
//! cargo run --example custom_nfa
//! ```

use ridfa::automata::nfa::Builder;
use ridfa::automata::serialize;
use ridfa::core::csdpa::{recognize, Executor, RidCa};
use ridfa::core::ridfa::RiDfa;

fn main() {
    // A tiny protocol machine: 'h' (hello) then any number of 'd' (data)
    // or 'k' (keepalive), closed by 'b' (bye); sessions repeat. A second
    // nondeterministic reading of 'd' allows an early close.
    let mut b = Builder::new();
    let idle = b.add_state();
    let open = b.add_state();
    let closing = b.add_state();
    b.add_transition(idle, b'h', open);
    b.add_transition(open, b'd', open);
    b.add_transition(open, b'k', open);
    b.add_transition(open, b'd', closing);
    b.add_transition(closing, b'b', idle);
    b.add_transition(open, b'b', idle);
    b.set_start(idle);
    b.set_final(idle);
    let nfa = b.build().expect("well-formed NFA");

    // Persist and reload (the `.nfa` text format of ridfa-automata).
    let saved = serialize::nfa_to_text(&nfa);
    println!("serialized machine:\n{saved}");
    let reloaded = serialize::nfa_from_text(&saved).expect("round-trips");
    assert_eq!(nfa, reloaded);

    // Build the RI-DFA and recognize a session log.
    let rid = RiDfa::from_nfa(&reloaded).minimized();
    println!(
        "NFA {} states → RI-DFA {} states, {} interface",
        nfa.num_states(),
        rid.num_live_states(),
        rid.interface().len()
    );

    let ca = RidCa::new(&rid);
    let mut log = Vec::new();
    for _ in 0..100_000 {
        log.extend_from_slice(b"hddkdbhkb");
    }
    let outcome = recognize(&ca, &log, 8, Executor::PerChunk);
    println!(
        "session log of {} bytes in 8 chunks: {}",
        log.len(),
        if outcome.accepted { "VALID" } else { "INVALID" }
    );
    assert!(outcome.accepted);

    // An unterminated session is invalid.
    log.extend_from_slice(b"hdd");
    assert!(!recognize(&ca, &log, 8, Executor::PerChunk).accepted);
    println!("unterminated session: INVALID (as expected)");
}
