//! Quickstart: recognize a large text in parallel with minimal speculation.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use ridfa::automata::{nfa::glushkov, regex};
use ridfa::core::csdpa::{recognize, Executor, RidCa};
use ridfa::core::ridfa::RiDfa;

fn main() {
    // 1. A language: identifiers separated by commas.
    let pattern = "\\w+(,\\w+)*";
    let ast = regex::parse(pattern).expect("valid pattern");
    let nfa = glushkov::build(&ast).expect("NFA fits");

    // 2. The RI-DFA: deterministic transitions, NFA-sized interface.
    let rid = RiDfa::from_nfa(&nfa).minimized();
    println!("pattern          : {pattern}");
    println!("NFA states       : {}", nfa.num_states());
    println!("RI-DFA states    : {}", rid.num_live_states());
    println!(
        "interface states : {} (speculative runs per chunk)",
        rid.interface().len()
    );

    // 3. A text to recognize (≈ 4 MB of comma-separated words).
    let mut text = b"hello".to_vec();
    while text.len() < 4 << 20 {
        text.extend_from_slice(b",parallel_recognizers_have_minimal_speculation");
    }

    // 4. Parallel recognition: chunks scanned concurrently, joined serially.
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let ca = RidCa::new(&rid);
    let outcome = recognize(&ca, &text, threads, Executor::PerChunk);
    println!(
        "recognized {} MB in {} chunks: {} (reach {:.2} ms, join {:.3} ms)",
        text.len() >> 20,
        outcome.num_chunks,
        if outcome.accepted {
            "ACCEPTED"
        } else {
            "REJECTED"
        },
        outcome.reach.as_secs_f64() * 1e3,
        outcome.join.as_secs_f64() * 1e3,
    );
    assert!(outcome.accepted);

    // 5. A corrupted text is rejected.
    let mut bad = text.clone();
    bad[text.len() / 2] = b'!';
    let outcome = recognize(&ca, &bad, threads, Executor::PerChunk);
    assert!(!outcome.accepted);
    println!("corrupted copy  : REJECTED (as expected)");
}
