//! Reproduces Figure 1 of the paper exactly: the 3-state NFA over
//! Σ = {a,b,c}, its minimal DFA, the RI-DFA, and the transition counts of
//! the three CSDPA methods on the sample string "aabcab" split into two
//! chunks — 15 (DFA), 14 (NFA), 9 (RI-DFA).
//!
//! ```text
//! cargo run --example paper_figure1
//! ```

use ridfa::automata::dfa::{minimize, powerset};
use ridfa::automata::nfa::Builder;
use ridfa::automata::TransitionCount;
use ridfa::core::csdpa::{ChunkAutomaton, DfaCa, NfaCa, RidCa};
use ridfa::core::ridfa::RiDfa;

fn main() {
    // The NFA of Fig. 1 (edges recovered from the runs printed in Fig. 4):
    // 0 -a,c→ 1 ; 1 -a→ {0,1} ; 1 -b→ {0,2} ; 1 -c→ 0 ; 2 -b→ 1 ; F = {2}.
    let mut b = Builder::new();
    let q0 = b.add_state();
    let q1 = b.add_state();
    let q2 = b.add_state();
    b.add_transition(q0, b'a', q1);
    b.add_transition(q0, b'c', q1);
    b.add_transition(q1, b'a', q0);
    b.add_transition(q1, b'a', q1);
    b.add_transition(q1, b'b', q0);
    b.add_transition(q1, b'b', q2);
    b.add_transition(q1, b'c', q0);
    b.add_transition(q2, b'b', q1);
    b.set_start(q0);
    b.set_final(q2);
    let nfa = b.build().unwrap();

    let dfa = minimize::minimize(&powerset::determinize(&nfa));
    let rid = RiDfa::from_nfa(&nfa);

    println!("Fig. 1 machines:");
    println!("  NFA    : {} states (all initial as CA)", nfa.num_states());
    println!(
        "  min DFA: {} states (all initial as CA)",
        dfa.num_live_states()
    );
    println!(
        "  RI-DFA : {} states, only {} initial",
        rid.num_live_states(),
        rid.interface().len()
    );
    assert_eq!(nfa.num_states(), 3);
    assert_eq!(dfa.num_live_states(), 4);
    assert_eq!(rid.num_live_states(), 5);
    assert_eq!(rid.interface().len(), 3);

    // The sample valid string, divided in two chunks.
    let (chunk1, chunk2) = (b"aab".as_slice(), b"cab".as_slice());
    println!("\nruns of the CAs on \"aabcab\" = \"aab\" · \"cab\":");

    let total_dfa = count(&DfaCa::new(&dfa), chunk1, chunk2);
    let total_nfa = count(&NfaCa::new(&nfa), chunk1, chunk2);
    let total_rid = count(&RidCa::new(&rid), chunk1, chunk2);
    println!("  method      total transitions");
    println!("  min DFA     {total_dfa:>5}   (paper: 15)");
    println!("  NFA         {total_nfa:>5}   (paper: 14)");
    println!("  RI-DFA      {total_rid:>5}   (paper:  9)");
    assert_eq!((total_dfa, total_nfa, total_rid), (15, 14, 9));

    println!("\nserial recognition needs |x| = 6 transitions; everything above");
    println!("that is speculation overhead — minimal for the RI-DFA.");
}

fn count<CA: ChunkAutomaton>(ca: &CA, chunk1: &[u8], chunk2: &[u8]) -> u64 {
    let mut counter = TransitionCount::default();
    let m1 = ca.scan_first(chunk1, &mut counter);
    let m2 = ca.scan(chunk2, &mut counter);
    assert!(ca.join(&[m1, m2]), "aabcab must be accepted");
    counter.get()
}
