//! Syslog validation — the paper's `traffic` benchmark as an application:
//! check that a large network-traffic log consists solely of well-formed
//! records, in parallel, and demonstrate that one corrupted record
//! anywhere flips the verdict.
//!
//! ```text
//! cargo run --example log_scan --release
//! ```

use ridfa::automata::dfa::{minimize, powerset};
use ridfa::core::csdpa::{recognize, DfaCa, Executor, NfaCa, RidCa};
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::traffic;

fn main() {
    let nfa = traffic::nfa();
    let dfa = minimize::minimize(&powerset::determinize(&nfa));
    let rid = RiDfa::from_nfa(&nfa).minimized();
    println!(
        "traffic grammar: NFA {} states | min-DFA {} | RI-DFA interface {}",
        nfa.num_states(),
        dfa.num_live_states(),
        rid.interface().len()
    );

    let log = traffic::text(4 << 20, 3);
    println!("log size       : {} MB", log.len() >> 20);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    let rid_ca = RidCa::new(&rid);
    let dfa_ca = DfaCa::new(&dfa);
    let nfa_ca = NfaCa::new(&nfa);

    for (name, accepted, ms) in [
        timed("rid", || {
            recognize(&rid_ca, &log, threads, Executor::Team(threads)).accepted
        }),
        timed("dfa", || {
            recognize(&dfa_ca, &log, threads, Executor::Team(threads)).accepted
        }),
        timed("nfa", || {
            recognize(&nfa_ca, &log, threads, Executor::Team(threads)).accepted
        }),
    ] {
        println!("{name} variant    : {} in {ms:.2} ms", ok(accepted));
        assert!(accepted, "well-formed log must validate");
    }

    // One malformed record in the middle is caught.
    let corrupted = traffic::rejected_text(4 << 20, 3);
    let caught = !recognize(&rid_ca, &corrupted, threads, Executor::Team(threads)).accepted;
    println!("corrupted log  : {}", ok(!caught));
    assert!(caught);
}

fn timed(name: &'static str, f: impl FnOnce() -> bool) -> (&'static str, bool, f64) {
    let t0 = std::time::Instant::now();
    let accepted = f();
    (name, accepted, t0.elapsed().as_secs_f64() * 1e3)
}

fn ok(accepted: bool) -> &'static str {
    if accepted {
        "well-formed"
    } else {
        "MALFORMED"
    }
}
