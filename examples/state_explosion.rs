//! The exponential gap, live: `(a|b)* a (a|b)^k` — minimal-DFA states
//! double with every increment of `k` while the RI-DFA interface grows by
//! one. This is the paper's `regexp` family (the ideal conditions for top
//! RID performance, Sect. 4.4).
//!
//! ```text
//! cargo run --example state_explosion --release
//! ```

use std::time::Instant;

use ridfa::automata::dfa::{minimize, powerset};
use ridfa::core::csdpa::{recognize_counted, DfaCa, Executor, RidCa};
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::regexp;

fn main() {
    println!("k | NFA states | min-DFA states | RI-DFA interface | DFA/RID transition ratio");
    println!("--+------------+----------------+------------------+-------------------------");
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    for k in [2usize, 4, 6, 8, 10] {
        let nfa = regexp::nfa(k);
        let dfa = minimize::minimize(&powerset::determinize(&nfa));
        let rid = RiDfa::from_nfa(&nfa).minimized();

        let text = regexp::text(k, 1 << 20, 42);
        let c_dfa = recognize_counted(&DfaCa::new(&dfa), &text, 32, Executor::Team(threads));
        let c_rid = recognize_counted(&RidCa::new(&rid), &text, 32, Executor::Team(threads));
        assert!(c_dfa.accepted && c_rid.accepted);
        println!(
            "{k:>2} | {:>10} | {:>14} | {:>16} | {:>7.2}",
            nfa.num_states(),
            dfa.num_live_states(),
            rid.interface().len(),
            c_dfa.transitions as f64 / c_rid.transitions as f64,
        );
    }

    // Construction stays cheap even where the DFA is big.
    let k = 14;
    let nfa = regexp::nfa(k);
    let t0 = Instant::now();
    let rid = RiDfa::from_nfa(&nfa).minimized();
    let t_rid = t0.elapsed();
    let t1 = Instant::now();
    let dfa = minimize::minimize(&powerset::determinize(&nfa));
    let t_dfa = t1.elapsed();
    println!(
        "\nk = {k}: min-DFA {} states in {:.1} ms; RI-DFA interface {} in {:.1} ms",
        dfa.num_live_states(),
        t_dfa.as_secs_f64() * 1e3,
        rid.interface().len(),
        t_rid.as_secs_f64() * 1e3,
    );
    println!(
        "the classic variant must speculate on all {} DFA states per chunk;",
        dfa.num_live_states()
    );
    println!(
        "the RID speculates on {} — that is the whole paper in one line.",
        rid.interface().len()
    );
}
