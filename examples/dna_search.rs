//! DNA motif scanning on FASTA data — the paper's `fasta` benchmark as an
//! application: validate that a (synthetic) genome bank contains one of
//! the restriction-enzyme recognition sites, in parallel.
//!
//! ```text
//! cargo run --example dna_search --release
//! ```

use ridfa::automata::dfa::{minimize, powerset};
use ridfa::core::csdpa::{recognize_counted, recognize_serial, DfaCa, Executor, RidCa};
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::fasta;

fn main() {
    let nfa = fasta::nfa();
    let rid = RiDfa::from_nfa(&nfa).minimized();
    let dfa = minimize::minimize(&powerset::determinize(&nfa));
    println!("motifs      : {:?}", fasta::MOTIFS);
    println!("pattern     : {}", fasta::pattern());
    println!(
        "NFA {} states | min-DFA {} | RI-DFA interface {} (was {})",
        nfa.num_states(),
        dfa.num_live_states(),
        rid.interface().len(),
        nfa.num_states(),
    );

    // ~2 MB synthetic genome bank with planted motifs.
    let genome = fasta::text(2 << 20, 7);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    let rid_ca = RidCa::new(&rid);
    let dfa_ca = DfaCa::new(&dfa);

    let (serial_ok, serial_transitions, serial_time) = recognize_serial(&rid_ca, &genome);
    println!(
        "\nserial scan   : {} | {} transitions | {:.2} ms",
        verdict(serial_ok),
        serial_transitions,
        serial_time.as_secs_f64() * 1e3
    );

    let rid_out = recognize_counted(&rid_ca, &genome, threads, Executor::Team(threads));
    println!(
        "RID  parallel : {} | {} transitions | reach {:.2} ms ({} chunks)",
        verdict(rid_out.accepted),
        rid_out.transitions,
        rid_out.reach.as_secs_f64() * 1e3,
        rid_out.num_chunks
    );
    let dfa_out = recognize_counted(&dfa_ca, &genome, threads, Executor::Team(threads));
    println!(
        "DFA  parallel : {} | {} transitions | reach {:.2} ms — an *even* benchmark",
        verdict(dfa_out.accepted),
        dfa_out.transitions,
        dfa_out.reach.as_secs_f64() * 1e3,
    );
    assert!(serial_ok && rid_out.accepted && dfa_out.accepted);

    // A motif-free bank is rejected.
    let clean = fasta::rejected_text(1 << 20, 9);
    let out = recognize_counted(&rid_ca, &clean, threads, Executor::Team(threads));
    println!("motif-free    : {}", verdict(out.accepted));
    assert!(!out.accepted);
}

fn verdict(accepted: bool) -> &'static str {
    if accepted {
        "motif found"
    } else {
        "no motif"
    }
}
