//! Asserts the lockstep kernel's allocation contract: after the scratch
//! and the output mapping have warmed up, a scan performs **zero** heap
//! allocations, for every kernel strategy.
//!
//! Lives in its own test binary because the counting [`GlobalAlloc`]
//! observes every thread in the process — sharing a binary with
//! concurrently running tests would make the counter meaningless. The
//! two tests here run single-threaded scans only.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ridfa::automata::dfa::{minimize, powerset};
use ridfa::automata::nfa::glushkov;
use ridfa::automata::regex::parse;
use ridfa::automata::NoCount;
use ridfa::core::csdpa::kernel::{self, DenseTable, Kernel, Scratch};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_scans_allocate_nothing() {
    let dfa = minimize::minimize(&powerset::determinize(
        &glushkov::build(&parse("(a|b)*abb(a|b)*ab").unwrap()).unwrap(),
    ));
    let ptable = dfa.premultiplied_table();
    let table = DenseTable {
        ptable: &ptable,
        stride: dfa.stride(),
        classes: dfa.classes(),
    };
    let chunk = b"abbaabbbab".repeat(2000);

    for kernel in [
        Kernel::PerRun,
        Kernel::Lockstep,
        Kernel::LockstepShared,
        Kernel::Simd,
        Kernel::Auto,
    ] {
        let mut scratch = Scratch::default();
        let mut out = Vec::new();
        // Warm-up: sizes the scratch arrays and the output mapping.
        kernel::scan_into(
            table,
            dfa.live_states().map(|s| (s, s)),
            dfa.num_states(),
            &chunk,
            kernel,
            &mut scratch,
            &mut NoCount,
            &mut out,
        );
        let before = allocations();
        for _ in 0..5 {
            kernel::scan_into(
                table,
                dfa.live_states().map(|s| (s, s)),
                dfa.num_states(),
                &chunk,
                kernel,
                &mut scratch,
                &mut NoCount,
                &mut out,
            );
        }
        assert_eq!(
            allocations() - before,
            0,
            "{kernel:?} allocated on a warm scan"
        );
    }
}

#[test]
fn scratch_growth_stops_at_the_high_water_mark() {
    // Alternating between a small and a large automaton must stop
    // allocating once both have been seen.
    let small = powerset::determinize(&glushkov::build(&parse("ab").unwrap()).unwrap());
    let big = powerset::determinize(
        &glushkov::build(&parse("(a|b|c)*ab(a|b)(a|b)(a|b)").unwrap()).unwrap(),
    );
    let p_small = small.premultiplied_table();
    let p_big = big.premultiplied_table();
    let mut scratch = Scratch::default();
    let mut out = Vec::new();
    let chunk = b"abcab".repeat(200);
    let scan = |dfa: &ridfa::automata::dfa::Dfa,
                ptable: &[u32],
                out: &mut Vec<u32>,
                scratch: &mut Scratch| {
        kernel::scan_into(
            DenseTable {
                ptable,
                stride: dfa.stride(),
                classes: dfa.classes(),
            },
            dfa.live_states().map(|s| (s, s)),
            dfa.num_states(),
            &chunk,
            Kernel::LockstepShared,
            scratch,
            &mut NoCount,
            out,
        );
    };
    // Warm up on both automata.
    scan(&small, &p_small, &mut out, &mut scratch);
    scan(&big, &p_big, &mut out, &mut scratch);
    let before = allocations();
    for _ in 0..4 {
        scan(&small, &p_small, &mut out, &mut scratch);
        scan(&big, &p_big, &mut out, &mut scratch);
    }
    assert_eq!(
        allocations() - before,
        0,
        "alternating warm scans allocated"
    );
}
