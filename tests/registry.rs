//! Registry lifecycle: many patterns on one shared worker pool,
//! eviction under table-byte pressure, and artifact-loaded entries that
//! behave exactly like freshly constructed ones.

use std::sync::Arc;

use ridfa::automata::nfa::glushkov;
use ridfa::automata::regex;
use ridfa::core::csdpa::{
    ConvergentRidCa, PatternRegistry, RegistryConfig, RegistryError, Session, StreamScan,
};
use ridfa::core::ridfa::{ridfa_to_bytes, RiDfa};
use ridfa::faults::XorShift64;

fn registry(workers: usize) -> PatternRegistry {
    let mut reg = PatternRegistry::new(RegistryConfig {
        num_workers: workers,
        block_size: 512,
        ..RegistryConfig::default()
    });
    reg.insert_regex("abb", "(a|b)*abb").unwrap();
    reg.insert_regex("digits", "[0-9]+").unwrap();
    reg.insert_regex("word", "[a-z]+(-[a-z]+)*").unwrap();
    reg.insert_regex("mask", "[ab]*a[ab]{4}").unwrap();
    reg
}

/// Interleaved recognitions across four patterns share one pool: the
/// pool never grows, verdicts stay correct, per-pattern stats add up.
#[test]
fn four_patterns_one_pool_interleaved() {
    let mut reg = registry(3);
    let cases: &[(&str, &[u8], bool)] = &[
        ("abb", b"bababb", true),
        ("abb", b"ba", false),
        ("digits", b"0123456789", true),
        ("digits", b"12a34", false),
        ("word", b"alpha-beta-gamma", true),
        ("word", b"alpha--beta", false),
        ("mask", b"bbbaabab", true),
        ("mask", b"bbb", false),
    ];
    let mut rng = XorShift64::new(0x5eed);
    for round in 0..100 {
        let (id, text, expect) = cases[(rng.next_u64() % cases.len() as u64) as usize];
        let chunks = 1 + (round % 5);
        let out = reg.recognize(id, text, chunks).unwrap();
        assert_eq!(out.accepted, expect, "{id} on {text:?} in {chunks} chunks");
    }
    let health = reg.health();
    assert_eq!(
        health.configured, 3,
        "pool width must not grow with patterns"
    );
    assert_eq!(health.live, 3);
    let total: u64 = ["abb", "digits", "word", "mask"]
        .iter()
        .map(|id| reg.stats(id).unwrap().requests)
        .sum();
    assert_eq!(total, 100);
}

/// The shared pool serves sessions on several *threads* concurrently:
/// each thread attaches its own warm session to the registry's pool and
/// recognizes its own pattern — callers serialize on the pool's scope
/// slot, verdicts stay exact, and no thread wedges.
#[test]
fn shared_pool_recognitions_from_multiple_threads() {
    let reg = registry(2);
    let pool = reg.shared_pool();
    let patterns = ["(a|b)*abb", "[0-9]+", "[a-z]+(-[a-z]+)*"];
    let texts: [(&[u8], bool); 3] = [
        (b"bababb", true),
        (b"0123456789", true),
        (b"alpha--beta", false),
    ];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, pattern) in patterns.iter().enumerate() {
            let pool = Arc::clone(&pool);
            let (text, expect) = texts[i];
            handles.push(scope.spawn(move || {
                let ast = regex::parse(pattern).unwrap();
                let rid = RiDfa::from_nfa(&glushkov::build(&ast).unwrap()).minimized();
                let ca = ConvergentRidCa::new(&rid);
                let mut session = Session::with_shared_pool(pool);
                for _ in 0..50 {
                    let out = session.recognize(&ca, text, 4);
                    assert_eq!(out.accepted, expect, "{pattern} on {text:?}");
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
    });
    assert_eq!(reg.health().live, 2, "workers survived the contention");
}

/// Byte pressure evicts least-recently-used patterns; the survivors and
/// the shared pool keep working, and the books balance.
#[test]
fn eviction_keeps_registry_consistent() {
    let mut reg = PatternRegistry::new(RegistryConfig {
        num_workers: 2,
        max_table_bytes: 48 * 1024,
        ..RegistryConfig::default()
    });
    reg.insert_regex("hot", "(a|b)*abb").unwrap();
    let mut inserted = vec!["hot".to_string()];
    let mut k = 0;
    // Keep "hot" warm while inserting until pressure evicts something.
    while reg.evictions() == 0 && k < 64 {
        assert!(reg.recognize("hot", b"bababb", 2).unwrap().accepted);
        let id = format!("cold{k}");
        reg.insert_regex(&id, "[ab]*a[ab]{5}").unwrap();
        inserted.push(id);
        k += 1;
    }
    assert!(reg.evictions() > 0, "byte pressure never evicted");
    assert!(
        reg.resident_bytes() <= 48 * 1024,
        "cap exceeded after eviction"
    );
    assert!(
        reg.contains("hot"),
        "the constantly-touched pattern must not be the LRU victim"
    );
    // Evicted ids answer UnknownPattern, not stale results; survivors
    // still recognize.
    let mut evicted = 0;
    for id in &inserted {
        if reg.contains(id) {
            let expected = id == "hot";
            let out = reg.recognize(id, b"bababb", 2).unwrap();
            assert_eq!(out.accepted, expected, "{id}");
        } else {
            evicted += 1;
            assert!(matches!(
                reg.recognize(id, b"x", 1),
                Err(RegistryError::UnknownPattern(_))
            ));
        }
    }
    assert_eq!(evicted as u64, reg.evictions());
    // Re-inserting an evicted pattern works (possibly evicting again).
    reg.insert_regex("cold0-again", "[ab]*a[ab]{5}").unwrap();
    assert!(reg.recognize("cold0-again", b"ababab", 2).unwrap().accepted);
}

/// An artifact-loaded entry and a fresh-construction entry are
/// indistinguishable: same verdicts batch, streaming and incremental,
/// on the same inputs.
#[test]
fn artifact_and_fresh_entries_are_equivalent() {
    let ast = regex::parse("[ab]*a[ab]{4}").unwrap();
    let nfa = glushkov::build(&ast).unwrap();
    let rid = RiDfa::from_nfa(&nfa).minimized();
    let bytes = ridfa_to_bytes(&rid);

    let mut reg = PatternRegistry::new(RegistryConfig {
        num_workers: 2,
        ..RegistryConfig::default()
    });
    reg.insert_nfa("fresh", &nfa).unwrap();
    reg.insert_artifact("cold", &bytes).unwrap();
    assert_eq!(reg.num_states("fresh"), reg.num_states("cold"));

    let mut rng = XorShift64::new(0xc01d);
    for round in 0..200 {
        let n = (rng.next_u64() % 40) as usize;
        let mut text: Vec<u8> = (0..n)
            .map(|_| b"ab"[(rng.next_u64() % 2) as usize])
            .collect();
        if round % 2 == 0 {
            text.push(b'a');
            text.extend((0..4).map(|_| b"ab"[(rng.next_u64() % 2) as usize]));
        }
        let fresh = reg.recognize("fresh", &text, 3).unwrap().accepted;
        let cold = reg.recognize("cold", &text, 3).unwrap().accepted;
        assert_eq!(fresh, cold, "batch divergence on {text:?}");

        let fresh_stream = reg
            .recognize_stream("fresh", std::io::Cursor::new(text.clone()))
            .unwrap()
            .accepted;
        assert_eq!(fresh, fresh_stream, "stream divergence on {text:?}");

        let mut scan = StreamScan::new();
        for block in text.chunks(7) {
            reg.scan_block("cold", &mut scan, block).unwrap();
        }
        let incremental = reg.finish_scan("cold", &mut scan).unwrap();
        assert_eq!(fresh, incremental, "incremental divergence on {text:?}");
    }
}

/// The pooled big-body scan is verdict- and byte-count-equivalent to the
/// serial incremental scan on the same block sequence — λ-composition is
/// associative, so splitting a block across the pool must not change
/// anything observable.
#[test]
fn pooled_scan_blocks_match_serial_scan_blocks() {
    let mut reg = registry(3);
    let mut rng = XorShift64::new(0xb10c);
    for round in 0..40 {
        let id = ["abb", "digits", "word", "mask"][round % 4];
        let alphabet: &[u8] = match id {
            "digits" => b"0123456789x",
            "word" => b"abc-",
            _ => b"ab",
        };
        let n = 200 + (rng.next_u64() % 4000) as usize;
        let text: Vec<u8> = (0..n)
            .map(|_| alphabet[(rng.next_u64() % alphabet.len() as u64) as usize])
            .collect();

        let mut serial = StreamScan::new();
        for block in text.chunks(777) {
            reg.scan_block(id, &mut serial, block).unwrap();
        }
        let serial_bytes = serial.bytes();
        let serial_verdict = reg.finish_scan(id, &mut serial).unwrap();

        let mut pooled = StreamScan::new();
        for block in text.chunks(777) {
            reg.scan_block_pooled(id, &mut pooled, block).unwrap();
        }
        assert_eq!(pooled.bytes(), serial_bytes, "{id} round {round}");
        let pooled_verdict = reg.finish_scan(id, &mut pooled).unwrap();
        assert_eq!(pooled_verdict, serial_verdict, "{id} round {round}");
    }
}

/// Re-inserting a pattern bumps its epoch: scans started against the old
/// automaton fail typed (`PatternReloaded`) instead of mixing verdicts
/// across generations — on the serial path, the pooled path, and at
/// finish. A reset scan binds to the new epoch and works.
#[test]
fn reload_mid_scan_is_a_typed_error_never_a_stale_verdict() {
    let mut reg = registry(2);
    let mut scan = StreamScan::new();
    reg.scan_block("digits", &mut scan, b"123").unwrap();
    let mut pooled = StreamScan::new();
    reg.scan_block_pooled("digits", &mut pooled, b"456")
        .unwrap();

    // Hot reload: same id, different automaton, fresh epoch (a resident
    // id must be removed first — re-insertion is what bumps the epoch).
    assert!(reg.remove("digits"));
    reg.insert_regex("digits", "[0-9]{5}").unwrap();

    assert!(matches!(
        reg.scan_block("digits", &mut scan, b"45"),
        Err(RegistryError::PatternReloaded { ref id }) if id == "digits"
    ));
    assert!(matches!(
        reg.scan_block_pooled("digits", &mut pooled, b"78"),
        Err(RegistryError::PatternReloaded { ref id }) if id == "digits"
    ));
    assert!(matches!(
        reg.finish_scan("digits", &mut scan),
        Err(RegistryError::PatternReloaded { ref id }) if id == "digits"
    ));

    // finish_scan resets the stale scan; the next stream binds to the
    // new epoch and gets the new pattern's verdict.
    reg.scan_block("digits", &mut scan, b"123").unwrap();
    assert!(!reg.finish_scan("digits", &mut scan).unwrap());
    reg.scan_block("digits", &mut scan, b"12345").unwrap();
    assert!(reg.finish_scan("digits", &mut scan).unwrap());
}
