//! Integration tests of the streaming layer: a `StreamSession` over an
//! adversarial `Read` implementation (1-byte reads, block-misaligned
//! partial reads, `Interrupted` retries) must agree with one-shot
//! `recognize` for all six chunk automata across block sizes and worker
//! counts — and a ≥ 256 MiB generated record stream must be recognized
//! with buffer memory provably independent of stream length.

use std::io::{self, Cursor, Read};

use ridfa::automata::dfa::{minimize, powerset};
use ridfa::core::csdpa::{
    recognize, ConvergentDfaCa, ConvergentRidCa, DfaCa, Executor, NfaCa, RidCa, StreamSession,
};
use ridfa::core::ridfa::RiDfa;
use ridfa::core::sfa::{Sfa, SfaCa};
use ridfa::workloads::regen::{random_ast, sample_into, RegenConfig};
use ridfa::workloads::traffic;

use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};

/// An adversarial reader: hands the wrapped bytes out in a rotating
/// schedule of 1-byte reads, short block-misaligned reads, and
/// `ErrorKind::Interrupted` failures that a conforming consumer must
/// retry.
struct FussyReader<'a> {
    data: &'a [u8],
    pos: usize,
    step: usize,
}

impl<'a> FussyReader<'a> {
    fn new(data: &'a [u8]) -> FussyReader<'a> {
        FussyReader {
            data,
            pos: 0,
            step: 0,
        }
    }
}

impl Read for FussyReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.step += 1;
        if self.step.is_multiple_of(5) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "try again"));
        }
        let remaining = self.data.len() - self.pos;
        if remaining == 0 || buf.is_empty() {
            return Ok(0);
        }
        // Rotate through 1-byte, 3-byte, 7-byte, and near-full reads so
        // block boundaries never align with read boundaries.
        let want = match self.step % 4 {
            0 => 1,
            1 => 3,
            2 => 7,
            _ => buf.len().saturating_sub(1).max(1),
        };
        let n = want.min(remaining).min(buf.len());
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn stream_matches_one_shot_for_all_six_cas_on_random_cases() {
    let config = RegenConfig {
        alphabet: b"ab".to_vec(),
        max_depth: 3,
        max_width: 3,
        star_percent: 35,
    };
    let mut rng = StdRng::seed_from_u64(0x57E4);
    for seed in 0..16u64 {
        let ast = random_ast(&config, seed);
        let nfa = ridfa::automata::nfa::glushkov::build(&ast).unwrap();
        let dfa = minimize::minimize(&powerset::determinize(&nfa));
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let sfa = Sfa::build_limited(&dfa, 1 << 14).ok();

        let mut sampler = SmallRng::seed_from_u64(seed ^ 0xBEEF);
        let mut text = Vec::new();
        for _ in 0..rng.gen_range(1..6usize) {
            sample_into(&ast, &mut sampler, &mut text);
        }
        if rng.gen_ratio(1, 2) && !text.is_empty() {
            let i = rng.gen_range(0..text.len());
            text[i] = if text[i] == b'a' { b'b' } else { b'a' };
        }

        let dfa_ca = DfaCa::new(&dfa);
        let nfa_ca = NfaCa::new(&nfa);
        let rid_ca = RidCa::new(&rid);
        let conv_dfa = ConvergentDfaCa::new(&dfa);
        let conv_rid = ConvergentRidCa::new(&rid);
        let expected = recognize(&rid_ca, &text, 4, Executor::Serial).accepted;
        assert_eq!(expected, dfa.accepts(&text), "oracle seed {seed}");

        for workers in [1usize, 3] {
            for block_size in [1usize, 2, 7, 64, 4096] {
                let mut session = StreamSession::new(workers, block_size);
                macro_rules! check {
                    ($ca:expr, $label:literal) => {{
                        let out = session
                            .recognize_stream($ca, FussyReader::new(&text))
                            .unwrap();
                        assert_eq!(
                            out.accepted, expected,
                            "seed {seed} {} w={workers} b={block_size}",
                            $label
                        );
                        if !out.rejected_early {
                            assert_eq!(out.bytes, text.len() as u64);
                        }
                    }};
                }
                check!(&dfa_ca, "dfa");
                check!(&nfa_ca, "nfa");
                check!(&rid_ca, "rid");
                check!(&conv_dfa, "dfa+conv");
                check!(&conv_rid, "rid+conv");
                if let Some(sfa) = &sfa {
                    check!(&SfaCa::new(sfa), "sfa");
                }
            }
        }
    }
}

/// The adversarial failure matrix: every chunk automaton, hit with
/// retryable stalls (which must be absorbed), then with non-retryable
/// mid-stream I/O faults at exact byte offsets (which must surface as
/// typed `io::Error`s) — after every failure the same session must serve
/// the next stream completely, with `buffer_bytes()` unchanged (no block
/// leaked by the aborted run).
#[test]
fn mid_stream_io_faults_leave_sessions_reusable_for_all_six_cas() {
    use ridfa::faults::{FailingReader, ShortReader, StallingReader};

    let ast = ridfa::automata::regex::parse("[ab]*a[ab]{4}").unwrap();
    let nfa = ridfa::automata::nfa::glushkov::build(&ast).unwrap();
    let dfa = minimize::minimize(&powerset::determinize(&nfa));
    let rid = RiDfa::from_nfa(&nfa).minimized();
    let sfa = Sfa::build_limited(&dfa, 1 << 14).expect("small machine fits");
    let text = b"abbaabbbaabab".repeat(50);

    macro_rules! check {
        ($ca:expr, $label:literal) => {{
            let ca = $ca;
            let mut session = StreamSession::new(2, 64);
            let clean = session.recognize_stream(ca, Cursor::new(&text)).unwrap();
            assert!(clean.accepted, $label);
            let ring = session.buffer_bytes();

            // Retryable interrupts and 3-byte short reads are absorbed.
            let out = session
                .recognize_stream(
                    ca,
                    StallingReader::new(ShortReader::new(Cursor::new(&text), 3), 2),
                )
                .unwrap();
            assert!(out.accepted, $label);
            assert_eq!(out.bytes, text.len() as u64, $label);
            assert_eq!(session.buffer_bytes(), ring, $label);

            // Non-retryable faults surface typed, at exact offsets: before
            // the first block, mid-stream, and on the very last byte.
            for (deliver, kind) in [
                (0usize, io::ErrorKind::WouldBlock),
                (200, io::ErrorKind::WouldBlock),
                (text.len() - 1, io::ErrorKind::ConnectionReset),
            ] {
                let err = session
                    .recognize_stream(ca, FailingReader::new(Cursor::new(&text), deliver, kind))
                    .unwrap_err();
                assert_eq!(err.kind(), kind, "{} deliver {deliver}", $label);
                assert_eq!(session.buffer_bytes(), ring, "{} deliver {deliver}", $label);
                let again = session.recognize_stream(ca, Cursor::new(&text)).unwrap();
                assert!(again.accepted, "{} deliver {deliver}", $label);
                assert_eq!(again.bytes, text.len() as u64, $label);
                assert_eq!(session.buffer_bytes(), ring, $label);
            }
        }};
    }
    check!(&DfaCa::new(&dfa), "dfa");
    check!(&NfaCa::new(&nfa), "nfa");
    check!(&RidCa::new(&rid), "rid");
    check!(&ConvergentDfaCa::new(&dfa), "dfa+conv");
    check!(&ConvergentRidCa::new(&rid), "rid+conv");
    check!(&SfaCa::new(&sfa), "sfa");
}

#[test]
fn stream_traffic_pipe_accepts_and_rejects() {
    let rid = RiDfa::from_nfa(&traffic::nfa()).minimized();
    let ca = ConvergentRidCa::new(&rid);
    let mut session = StreamSession::new(2, 16 << 10);
    session.warm(&ca, &traffic::text(4096, 0));

    let ok = session
        .recognize_stream(&ca, traffic::RecordSource::new(1 << 20, 7))
        .unwrap();
    assert!(ok.accepted);
    assert!(ok.bytes >= 1 << 20);
    assert!(ok.transitions >= ok.bytes, "at least one transition/byte");

    let bad = session
        .recognize_stream(&ca, traffic::RecordSource::with_corruption(1 << 20, 7, 100))
        .unwrap();
    assert!(!bad.accepted);
    assert!(
        bad.rejected_early,
        "a mid-stream corruption must stop the read"
    );
    assert!(bad.bytes < 1 << 20, "read {} bytes", bad.bytes);
}

#[test]
fn stream_agrees_with_one_shot_on_short_rejected_traffic() {
    // The rejected_text regression surface, exercised through the stream:
    // every "rejected" length must actually reject.
    let rid = RiDfa::from_nfa(&traffic::nfa()).minimized();
    let ca = ConvergentRidCa::new(&rid);
    let mut session = StreamSession::new(1, 64);
    for len in [10usize, 40, 80, 200, 2048] {
        let t = traffic::rejected_text(len, 11);
        let out = session.recognize_stream(&ca, Cursor::new(&t)).unwrap();
        assert!(!out.accepted, "len {len}");
        let accepted_text = traffic::text(len, 11);
        let out = session
            .recognize_stream(&ca, Cursor::new(&accepted_text))
            .unwrap();
        assert!(out.accepted, "len {len} conforming");
    }
}

/// The headline acceptance criterion: a ≥ 256 MiB conforming record
/// stream is recognized with live buffer memory bounded by
/// O(workers · block_size) — asserted by exact buffer accounting before,
/// during (capacity can only be observed between runs), and after — and
/// the verdict matches the generator's promise. Gated to release builds:
/// debug-mode scanning of 256 MiB would dominate the tier-1 suite.
#[test]
#[cfg_attr(debug_assertions, ignore = "256 MiB scan: run with --release")]
fn quarter_gib_stream_runs_in_bounded_memory() {
    const TARGET: u64 = 256 << 20;
    const BLOCK: usize = 1 << 20;
    let rid = RiDfa::from_nfa(&traffic::nfa()).minimized();
    let ca = ConvergentRidCa::new(&rid);
    let mut session = StreamSession::new(3, BLOCK);
    session.warm(&ca, &traffic::text(BLOCK.min(64 << 10), 0));

    let ring_bytes = session.ring_blocks() * BLOCK;
    assert_eq!(session.buffer_bytes(), ring_bytes);
    let live_mappings = session.live_mappings();
    assert_eq!(live_mappings, session.ring_blocks() + 3);

    let out = session
        .recognize_stream(&ca, traffic::RecordSource::new(TARGET, 42))
        .unwrap();
    assert!(out.accepted, "conforming pipe must be accepted");
    assert!(out.bytes >= TARGET, "streamed only {} bytes", out.bytes);
    assert!(out.blocks >= (TARGET as usize / BLOCK) as u64);
    // The ring never grew: text-buffer memory is independent of the
    // 256 MiB that flowed through it.
    assert_eq!(
        session.buffer_bytes(),
        ring_bytes,
        "block ring grew with stream length"
    );
    assert_eq!(session.live_mappings(), live_mappings);

    // And the rejection path on the same scale stops early.
    let bad = session
        .recognize_stream(
            &ca,
            traffic::RecordSource::with_corruption(TARGET, 42, 1000),
        )
        .unwrap();
    assert!(!bad.accepted);
    assert!(bad.rejected_early);
    assert!(
        bad.bytes < TARGET / 2,
        "early rejection still read {} bytes",
        bad.bytes
    );
    assert_eq!(session.buffer_bytes(), ring_bytes);
}
