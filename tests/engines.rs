//! Engine differential suite: every [`EnginePlan`] engine — speculative
//! lockstep, zero-speculation SFA, and lockstep with feasible-start
//! boundary pruning — must produce the exact verdict of the serial
//! oracle (the NFA / single deterministic RI-DFA run), on every text,
//! under every chunking, executor shape, worker count, and through every
//! layer the plan travels (raw `recognize`, separator-snapped spans, the
//! planned registry, warm streaming sessions, faulty readers).
//!
//! Seeded loops, no external test framework — same house style as
//! `equivalence.rs`.

use std::io::Cursor;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ridfa::automata::nfa::glushkov;
use ridfa::automata::ConstructionBudget;
use ridfa::core::csdpa::{
    chunk_spans_snapped, plan, recognize, recognize_spans, EnginePlan, Executor, FeasibleRidCa,
    FeasibleTable, PatternRegistry, RegistryConfig, RidCa,
};
use ridfa::core::ridfa::RiDfa;
use ridfa::core::sfa::{Sfa, SfaCa};
use ridfa::faults::{state_explosion_pattern, FailingReader, ShortReader, StallingReader};
use ridfa::workloads::regen::{random_ast, sample_into, RegenConfig};

const CASES: u64 = 48;

fn config() -> RegenConfig {
    RegenConfig {
        alphabet: b"ab\n".to_vec(),
        max_depth: 3,
        max_width: 3,
        star_percent: 30,
    }
}

/// A random text mixing member prefixes with arbitrary noise (including
/// bytes outside the pattern alphabet), so both verdicts are exercised.
fn random_text(ast: &ridfa::automata::regex::Ast, rng: &mut SmallRng) -> Vec<u8> {
    if rng.gen_range(0..2u32) == 0 {
        let mut text = Vec::new();
        sample_into(ast, rng, &mut text);
        text
    } else {
        let len = rng.gen_range(0..96usize);
        (0..len)
            .map(|_| b"ab\nc"[rng.gen_range(0..4usize)])
            .collect()
    }
}

fn random_executor(rng: &mut SmallRng) -> Executor {
    match rng.gen_range(0..4u32) {
        0 => Executor::Serial,
        1 => Executor::PerChunk,
        2 => Executor::Team(rng.gen_range(1..5usize)),
        _ => Executor::Auto,
    }
}

#[test]
fn all_engines_agree_with_the_serial_oracle() {
    let budget = ConstructionBudget::with_max_states(1 << 12);
    for seed in 0..CASES {
        let ast = random_ast(&config(), seed);
        let nfa = glushkov::build(&ast).unwrap();
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let feasible = FeasibleTable::build(&rid);
        let sfa = Sfa::build_rid_budgeted(&rid, &budget).ok();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xE1517);
        for _ in 0..6 {
            let text = random_text(&ast, &mut rng);
            let expected = nfa.accepts(&text);
            let chunks = rng.gen_range(1..9usize);
            let executor = random_executor(&mut rng);
            let lockstep = recognize(&RidCa::new(&rid), &text, chunks, executor);
            assert_eq!(expected, lockstep.accepted, "lockstep: {ast} on {text:?}");
            let pruned = recognize(
                &FeasibleRidCa::new(&rid, &feasible),
                &text,
                chunks,
                executor,
            );
            assert_eq!(expected, pruned.accepted, "feasible: {ast} on {text:?}");
            if let Some(sfa) = &sfa {
                let zero = recognize(&SfaCa::new(sfa), &text, chunks, executor);
                assert_eq!(expected, zero.accepted, "sfa: {ast} on {text:?}");
            }
        }
    }
}

#[test]
fn all_engines_agree_on_separator_snapped_spans() {
    // Record-structured texts cut at snapped boundaries: the spans are
    // irregular (and some cuts merge), so this exercises compositions the
    // even chunking never produces.
    let budget = ConstructionBudget::with_max_states(1 << 12);
    for seed in 0..CASES {
        let ast = random_ast(&config(), seed);
        let nfa = glushkov::build(&ast).unwrap();
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let feasible = FeasibleTable::build(&rid);
        let sfa = Sfa::build_rid_budgeted(&rid, &budget).ok();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x51A9);
        for _ in 0..4 {
            let text = random_text(&ast, &mut rng);
            let expected = nfa.accepts(&text);
            let mut spans = Vec::new();
            chunk_spans_snapped(&text, rng.gen_range(1..9usize), b'\n', &mut spans);
            let executor = random_executor(&mut rng);
            let lockstep = recognize_spans(&RidCa::new(&rid), &text, &spans, executor);
            assert_eq!(expected, lockstep.accepted, "lockstep: {ast} on {text:?}");
            let pruned = recognize_spans(
                &FeasibleRidCa::new(&rid, &feasible),
                &text,
                &spans,
                executor,
            );
            assert_eq!(expected, pruned.accepted, "feasible: {ast} on {text:?}");
            if let Some(sfa) = &sfa {
                let zero = recognize_spans(&SfaCa::new(sfa), &text, &spans, executor);
                assert_eq!(expected, zero.accepted, "sfa: {ast} on {text:?}");
            }
        }
    }
}

/// One registry per concrete plan, all serving the same pattern — the
/// planned entries must agree with the oracle through the full
/// session/stream plumbing, across worker counts.
fn planned_registries(pattern: &str, num_workers: usize) -> Vec<(EnginePlan, PatternRegistry)> {
    [
        EnginePlan::Lockstep,
        EnginePlan::Sfa,
        EnginePlan::FeasibleStart,
    ]
    .into_iter()
    .map(|plan| {
        let mut registry = PatternRegistry::new(RegistryConfig {
            num_workers,
            block_size: 64,
            ..RegistryConfig::default()
        });
        registry.insert_regex_planned("p", pattern, plan).unwrap();
        assert_eq!(registry.plan("p"), Some(plan));
        (plan, registry)
    })
    .collect()
}

#[test]
fn planned_registries_agree_end_to_end() {
    for &pattern in &["(a|b)*abb", "(ab)*(a|(b)*)", "((a|b)(a|b))*"] {
        let ast = ridfa::automata::regex::parse(pattern).unwrap();
        let nfa = glushkov::build(&ast).unwrap();
        for workers in [1usize, 3] {
            let mut registries = planned_registries(pattern, workers);
            let mut rng = SmallRng::seed_from_u64(0xD1FF ^ workers as u64);
            for round in 0..24 {
                let text = random_text(&ast, &mut rng);
                let expected = nfa.accepts(&text);
                let chunks = rng.gen_range(0..7usize);
                for (plan, registry) in registries.iter_mut() {
                    let out = registry.recognize("p", &text, chunks).unwrap();
                    assert_eq!(
                        expected,
                        out.accepted,
                        "{} batch: {pattern} round {round} on {text:?}",
                        plan.name()
                    );
                    let streamed = registry
                        .recognize_stream("p", ShortReader::new(Cursor::new(text.clone()), 3))
                        .unwrap();
                    assert_eq!(
                        expected,
                        streamed.accepted,
                        "{} stream: {pattern} round {round} on {text:?}",
                        plan.name()
                    );
                }
            }
        }
    }
}

#[test]
fn planned_registries_agree_under_faulty_readers() {
    let pattern = "(a|b)*abb";
    let ast = ridfa::automata::regex::parse(pattern).unwrap();
    let nfa = glushkov::build(&ast).unwrap();
    let mut registries = planned_registries(pattern, 2);
    let mut rng = SmallRng::seed_from_u64(0xFA17);
    for _ in 0..12 {
        let text = random_text(&ast, &mut rng);
        let expected = nfa.accepts(&text);
        for (plan, registry) in registries.iter_mut() {
            // Retryable faults (EINTR bursts, 1-byte reads) must not
            // change any engine's verdict.
            let stalled = registry
                .recognize_stream(
                    "p",
                    StallingReader::new(ShortReader::new(Cursor::new(text.clone()), 1), 2),
                )
                .unwrap();
            assert_eq!(expected, stalled.accepted, "{} on {text:?}", plan.name());
            // A mid-stream hard fault fails typed for every engine — no
            // plan may turn a broken pipe into a verdict. (The SFA and
            // pruned engines can legitimately *reject* early before
            // reaching the fault byte; accepting is the impossibility.)
            if text.len() > 4 {
                let result = registry.recognize_stream(
                    "p",
                    FailingReader::would_block(Cursor::new(text.clone()), text.len() - 2),
                );
                if let Ok(out) = result {
                    assert!(
                        !out.accepted,
                        "{} accepted a stream whose tail never arrived: {text:?}",
                        plan.name()
                    );
                }
            }
        }
    }
}

#[test]
fn registry_auto_selection_is_pinned_end_to_end() {
    // The integration-level twin of `plan::engine_selection_matrix_is_pinned`:
    // Auto resolution through a real registry lands where the matrix says.
    let mut registry = PatternRegistry::new(RegistryConfig {
        num_workers: 2,
        ..RegistryConfig::default()
    });

    // Small convergent pattern: the trial SFA build finishes far under the
    // caps, so Auto must pick the zero-speculation engine.
    registry.insert_regex("small", "(a|b)*abb").unwrap();
    assert_eq!(registry.plan("small"), Some(EnginePlan::Sfa));

    // A state-explosion pattern: the capped trial build trips its budget,
    // and the wide interface makes boundary pruning the fallback.
    let explosive = state_explosion_pattern(14);
    registry.insert_regex("wide", &explosive).unwrap();
    assert_eq!(registry.plan("wide"), Some(EnginePlan::FeasibleStart));
    let rid = RiDfa::from_nfa(
        &glushkov::build(&ridfa::automata::regex::parse(&explosive).unwrap()).unwrap(),
    )
    .minimized();
    assert!(
        rid.interface().len() >= plan::FEASIBLE_MIN_INTERFACE,
        "explosion pattern no longer has a wide interface; pin a new one"
    );

    // The resolved plans still answer correctly.
    assert!(registry.recognize("small", b"ababb", 4).unwrap().accepted);
    assert!(!registry.recognize("small", b"abab", 4).unwrap().accepted);
}
