//! Loopback serving: one process, many concurrent TCP connections with
//! mixed verdicts — multiplexed by the non-blocking loop, both on a
//! single shard (a prebuilt registry) and across four shards (per-shard
//! replicas built from a pattern spec), with identical observable
//! behavior.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use ridfa::automata::ConstructionBudget;
use ridfa::core::csdpa::{CancelToken, PatternRegistry, PatternSpec, RegistryConfig};
use ridfa::core::ridfa::ridfa_to_bytes;
use ridfa::core::serve::protocol::{self, Status};
use ridfa::core::serve::{ServeConfig, Server};
use ridfa::faults::XorShift64;

fn mask_artifact() -> Vec<u8> {
    let ast = ridfa::automata::regex::parse("[ab]*a[ab]{4}").unwrap();
    let nfa = ridfa::automata::nfa::glushkov::build(&ast).unwrap();
    let rid = ridfa::core::ridfa::RiDfa::from_nfa(&nfa).minimized();
    ridfa_to_bytes(&rid)
}

fn registry_config() -> RegistryConfig {
    RegistryConfig {
        num_workers: 2,
        block_size: 256,
        ..RegistryConfig::default()
    }
}

fn test_registry() -> PatternRegistry {
    let mut reg = PatternRegistry::new(registry_config());
    reg.insert_regex("abb", "(a|b)*abb").unwrap();
    reg.insert_regex("digits", "[0-9]+").unwrap();
    reg.insert_regex("word", "[a-z]+(-[a-z]+)*").unwrap();
    // The fourth pattern arrives as a binary artifact, like a prod
    // deploy would ship it.
    reg.insert_artifact("mask", &mask_artifact()).unwrap();
    reg
}

/// The same pattern set as [`test_registry`], as a spec multi-shard
/// servers can build replicas from (the artifact rides via a temp file,
/// like a prod deploy would ship it).
fn test_spec(tag: &str) -> PatternSpec {
    let path = std::env::temp_dir().join(format!("ridfa-mask-{tag}-{}.rida", std::process::id()));
    std::fs::write(&path, mask_artifact()).unwrap();
    let text = format!(
        "abb (a|b)*abb\ndigits [0-9]+\nword [a-z]+(-[a-z]+)*\nmask @{}\n",
        path.display()
    );
    let spec = PatternSpec::parse(&text, &ConstructionBudget::UNLIMITED, None).unwrap();
    let _ = std::fs::remove_file(&path);
    spec
}

/// 32 concurrent client threads × 4 requests each, across 4 patterns
/// (one artifact-loaded), mixed accept/reject plus unknown-pattern
/// probes: every verdict correct, every counter adds up — at any shard
/// count.
fn mixed_verdicts_scenario(server: Server, shards: usize) {
    const CLIENTS: usize = 32;
    const PER_CLIENT: usize = 4;

    let cases: &[(&str, &[u8], Status)] = &[
        ("abb", b"bababb", Status::Accepted),
        ("abb", b"baba", Status::Rejected),
        ("digits", b"0123456789012345", Status::Accepted),
        ("digits", b"123x", Status::Rejected),
        ("word", b"alpha-beta-gamma-delta", Status::Accepted),
        ("word", b"Alpha", Status::Rejected),
        ("mask", b"bbbbbaabab", Status::Accepted),
        ("mask", b"bb", Status::Rejected),
        ("no-such-pattern", b"whatever", Status::Protocol),
    ];

    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let expected = Arc::new(std::sync::Mutex::new(std::collections::HashMap::<
        &'static str,
        [u64; 3],
    >::new()));
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let expected = Arc::clone(&expected);
            scope.spawn(move || {
                let mut rng = XorShift64::new(0x9e37 + client as u64);
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(20)))
                    .unwrap();
                for _ in 0..PER_CLIENT {
                    let (id, body, want) = cases[(rng.next_u64() % cases.len() as u64) as usize];
                    let response = protocol::query(&mut stream, id, body).expect("query");
                    assert_eq!(response.status, want, "pattern {id} body {body:?}");
                    assert_eq!(response.scanned, body.len() as u64);
                    let mut tally = expected.lock().unwrap();
                    let slot = tally.entry(id).or_default();
                    match want {
                        Status::Accepted => slot[0] += 1,
                        Status::Rejected => slot[1] += 1,
                        _ => slot[2] += 1,
                    }
                }
            });
        }
    });

    let report = server_thread.join().unwrap();
    let total = (CLIENTS * PER_CLIENT) as u64;
    assert_eq!(report.tally.requests, total);
    assert_eq!(report.tally.connections, CLIENTS as u64);
    assert_eq!(report.connections.len(), CLIENTS);
    assert_eq!(report.shards.len(), shards);
    report.verify().expect("reconciliation invariants");

    let expected = expected.lock().unwrap();
    let sum = |i: usize| -> u64 { expected.values().map(|v| v[i]).sum() };
    assert_eq!(report.tally.accepted, sum(0));
    assert_eq!(report.tally.rejected, sum(1));
    assert_eq!(report.tally.protocol_errors, sum(2));

    // Per-pattern counters (summed across shard replicas) agree with
    // what the clients sent.
    for pattern in &report.patterns {
        let [accepted, rejected, _] = expected
            .get(pattern.id.as_str())
            .copied()
            .unwrap_or_default();
        assert_eq!(pattern.stats.accepted, accepted, "{}", pattern.id);
        assert_eq!(pattern.stats.rejected, rejected, "{}", pattern.id);
    }
    // Per-connection counters sum to the global ones.
    let conn_requests: u64 = report.connections.iter().map(|c| c.requests).sum();
    assert_eq!(conn_requests, total);
}

#[test]
fn thirty_two_concurrent_connections_mixed_verdicts() {
    let server = Server::bind(
        "127.0.0.1:0",
        test_registry(),
        ServeConfig {
            max_requests: Some(32 * 4),
            idle_timeout: Some(Duration::from_secs(10)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    mixed_verdicts_scenario(server, 1);
}

/// The identical client workload against a 4-shard server: verdicts,
/// totals and reconciliation must be indistinguishable from the
/// single-shard run.
#[test]
fn thirty_two_concurrent_connections_mixed_verdicts_four_shards() {
    let server = Server::bind_spec(
        "127.0.0.1:0",
        test_spec("mixed"),
        registry_config(),
        ServeConfig {
            max_requests: Some(32 * 4),
            idle_timeout: Some(Duration::from_secs(10)),
            shards: 4,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    mixed_verdicts_scenario(server, 4);
}

/// A request body larger than the configured budget is drained and
/// answered `Budget` without breaking the connection; a pipelined
/// follow-up on the same socket still gets its verdict.
#[test]
fn oversized_body_answers_budget_and_keeps_the_connection() {
    let server = Server::bind(
        "127.0.0.1:0",
        test_registry(),
        ServeConfig {
            max_requests: Some(3),
            max_body_bytes: 64,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let big = vec![b'7'; 200];
    let response = protocol::query(&mut stream, "digits", &big).unwrap();
    assert_eq!(response.status, Status::Budget);
    assert_eq!(
        response.scanned, 200,
        "oversized body must still be drained"
    );
    let response = protocol::query(&mut stream, "digits", b"12345").unwrap();
    assert_eq!(response.status, Status::Accepted);
    let response = protocol::query(&mut stream, "abb", b"abb").unwrap();
    assert_eq!(response.status, Status::Accepted);
    drop(stream);

    let report = server_thread.join().unwrap();
    assert_eq!(report.tally.budget_errors, 1);
    assert_eq!(report.tally.accepted, 2);
}

/// The cancel token stops an idle server promptly — the shutdown path a
/// supervisor would use.
#[test]
fn cancel_token_stops_the_loop() {
    let mut server = Server::bind("127.0.0.1:0", test_registry(), ServeConfig::default()).unwrap();
    let cancel = CancelToken::new();
    server.set_cancel(cancel.clone());
    let server_thread = std::thread::spawn(move || server.run().unwrap());
    std::thread::sleep(Duration::from_millis(50));
    cancel.cancel();
    let report = server_thread.join().unwrap();
    assert_eq!(report.tally.requests, 0);
}
