//! Deterministic chaos suite: every fault the library claims to contain
//! is injected here — worker-killing panics, depleted respawn budgets,
//! expired deadlines, cancellations, mid-stream I/O errors, panicking
//! chunk automata, and state-exploding constructions — and every test
//! asserts the documented containment: typed errors (never an unwinding
//! panic across a public budgeted API), sessions that stay reusable, and
//! buffer accounting that does not drift.
//!
//! All schedules are seeded ([`XorShift64`]) or byte-exact, so a failure
//! reproduces deterministically. `CHAOS_ITERS` scales the perturbation
//! loops (CI runs elevated iterations; the default keeps tier-1 fast).

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Cursor;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use ridfa::automata::nfa::glushkov;
use ridfa::automata::{regex, ConstructionBudget, Error};
use ridfa::core::csdpa::{
    recognize_budgeted, Budget, CancelToken, ConvergentRidCa, Degraded, Executor, RecognizeError,
    RidCa, Session, StreamError, StreamSession,
};
use ridfa::core::csdpa::{PatternRegistry, PatternSpec, RegistryConfig};
use ridfa::core::ridfa::RiDfa;
use ridfa::core::serve::protocol::{self, Status};
use ridfa::core::serve::{ServeConfig, Server};
use ridfa::core::sfa::Sfa;
use ridfa::faults::{kill_workers, state_explosion_pattern, FailingReader, PanicCa, XorShift64};

/// Tracks current and peak heap usage so the construction-budget test can
/// prove the cap bounded the blow-up, not just produced an error late.
struct PeakAlloc {
    current: AtomicUsize,
    peak: AtomicUsize,
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            let live = self.current.fetch_add(layout.size(), Ordering::SeqCst) + layout.size();
            self.peak.fetch_max(live, Ordering::SeqCst);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.current.fetch_sub(layout.size(), Ordering::SeqCst);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc {
    current: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

/// Iteration scale: `CHAOS_ITERS` (CI sets an elevated count) or a small
/// default that keeps the tier-1 suite fast.
fn chaos_iters(default: usize) -> usize {
    std::env::var("CHAOS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn machine() -> RiDfa {
    let ast = regex::parse("[ab]*a[ab]{4}").unwrap();
    RiDfa::from_nfa(&glushkov::build(&ast).unwrap()).minimized()
}

/// Accepted/rejected text mix with verdicts known by construction.
fn text_mix() -> (Vec<Vec<u8>>, Vec<bool>) {
    let accepted = b"abbaabbbaabab".repeat(40);
    let rejected = b"bbbb".repeat(100);
    let texts = vec![
        accepted.clone(),
        rejected.clone(),
        accepted[..26].to_vec(),
        b"a".to_vec(),
        Vec::new(),
    ];
    let verdicts = vec![true, false, true, false, false];
    (texts, verdicts)
}

#[test]
fn killed_workers_respawn_and_the_next_request_is_served_correctly() {
    let rid = machine();
    let ca = RidCa::new(&rid);
    let mut session = Session::new(4);
    let (texts, expected) = text_mix();
    let mut rng = XorShift64::new(0xC0FFEE);
    let mut killed_total = 0;
    for round in 0..chaos_iters(3) {
        // Kill 1-2 workers with an untrappable (drop-panicking) payload,
        // then hit the poisoned pool with the very next batch.
        let kills = 1 + rng.below(2) as usize;
        kill_workers(session.pool(), kills);
        killed_total += kills as u64;
        let chunks = 1 + rng.below(7) as usize;
        assert_eq!(
            session.recognize_many(&ca, &texts, chunks),
            expected,
            "round {round} chunks {chunks}"
        );
        // Dispatch healed the pool back to full strength — and the kill
        // was trapped, not propagated.
        let health = session.health();
        assert_eq!(health.live, health.configured, "round {round}");
        assert!(health.respawns >= killed_total, "round {round}");
        assert!(session.last_degraded().is_none(), "round {round}");
    }
}

#[test]
fn depleted_pool_degrades_to_serial_with_a_recorded_reason() {
    let rid = machine();
    let ca = RidCa::new(&rid);
    // Zero respawn budget: deaths are permanent, so killing 3 of 4
    // workers leaves the pool below quorum (1 live × 2 < 4 configured).
    let mut session = Session::with_respawn_limit(4, 0);
    kill_workers(session.pool(), 3);
    let (texts, expected) = text_mix();

    let out = session.recognize(&ca, &texts[0], 8);
    assert!(out.accepted);
    assert_eq!(out.executor, Executor::Serial, "must degrade, not limp");
    assert_eq!(
        session.last_degraded(),
        Some(Degraded::PoolBelowQuorum {
            live: 1,
            configured: 4
        })
    );

    // The batch and budgeted paths degrade the same way and stay correct.
    assert_eq!(session.recognize_many(&ca, &texts, 4), expected);
    assert!(session.last_degraded().is_some());
    let roomy = Budget::with_timeout(Duration::from_secs(3600));
    let out = session
        .recognize_budgeted(&ca, &texts[0], 8, &roomy)
        .unwrap();
    assert!(out.accepted);
    assert_eq!(out.executor, Executor::Serial);

    // A degraded session still honors budgets with typed errors.
    assert_eq!(
        session
            .recognize_budgeted(&ca, &texts[0], 8, &Budget::with_timeout(Duration::ZERO))
            .unwrap_err(),
        RecognizeError::DeadlineExceeded
    );
}

#[test]
fn expired_deadlines_and_cancellations_are_deterministic_and_leave_streams_reusable() {
    let rid = machine();
    let ca = ConvergentRidCa::new(&rid);
    let text = b"abbaabbbaabab".repeat(200);
    let mut stream = StreamSession::new(2, 64);
    let ring = stream.buffer_bytes();

    for _ in 0..chaos_iters(2) {
        // Pre-expired deadline: fails before composing a single wave.
        let err = stream
            .recognize_stream_budgeted(
                &ca,
                Cursor::new(&text),
                &Budget::with_timeout(Duration::ZERO),
            )
            .unwrap_err();
        assert!(matches!(err, StreamError::DeadlineExceeded), "{err}");
        assert_eq!(stream.buffer_bytes(), ring, "ring grew on deadline");

        // Pre-cancelled token: ditto, with the cancel reason.
        let token = CancelToken::new();
        token.cancel();
        let err = stream
            .recognize_stream_budgeted(&ca, Cursor::new(&text), &Budget::with_cancel(&token))
            .unwrap_err();
        assert!(matches!(err, StreamError::Cancelled), "{err}");
        assert_eq!(stream.buffer_bytes(), ring, "ring grew on cancel");

        // Mid-stream I/O fault at an exact byte offset, through both the
        // budgeted (typed) and the plain (io::Error) surface.
        let broken = FailingReader::would_block(Cursor::new(&text), 200);
        let err = stream
            .recognize_stream_budgeted(&ca, broken, &Budget::unlimited())
            .unwrap_err();
        assert!(
            matches!(err, StreamError::Io(ref e) if e.kind() == std::io::ErrorKind::WouldBlock)
        );
        let broken = FailingReader::would_block(Cursor::new(&text), 200);
        let err = stream.recognize_stream(&ca, broken).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        assert_eq!(stream.buffer_bytes(), ring, "ring grew on I/O error");

        // After every failure the session serves the next stream fully.
        let out = stream.recognize_stream(&ca, Cursor::new(&text)).unwrap();
        assert!(out.accepted);
        assert_eq!(out.bytes, text.len() as u64);
        assert_eq!(stream.buffer_bytes(), ring);
    }
}

#[test]
fn a_panicking_chunk_automaton_cannot_cross_a_budgeted_api() {
    let rid = machine();
    let text = b"abbaabbbaabab".repeat(100);
    let roomy = Budget::with_timeout(Duration::from_secs(3600));

    // Through the free budgeted recognizer (scoped spawning executor).
    let faulty = PanicCa::new(ConvergentRidCa::new(&rid), 2);
    let err = recognize_budgeted(&faulty, &text, 8, Executor::PerChunk, &roomy).unwrap_err();
    match err {
        RecognizeError::Panicked(msg) => assert!(msg.contains("injected fault"), "{msg}"),
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The injected panic fired exactly once: the same automaton now works.
    let out = recognize_budgeted(&faulty, &text, 8, Executor::PerChunk, &roomy).unwrap();
    assert!(out.accepted);

    // Through a session (pooled executor) — and the pool survives. An
    // 8-chunk call makes 7 interior scans (the first chunk scans via
    // `scan_first_into`), so the injected ordinal cycles through 2..=7
    // to always fire inside the budgeted call under any CHAOS_ITERS.
    for round in 1..=chaos_iters(3) {
        let ordinal = 2 + (round % 6);
        let faulty = PanicCa::new(ConvergentRidCa::new(&rid), ordinal);
        let mut session = Session::new(2);
        let err = session
            .recognize_budgeted(&faulty, &text, 8, &roomy)
            .unwrap_err();
        assert!(
            matches!(err, RecognizeError::Panicked(_)),
            "ordinal {ordinal}: {err:?}"
        );
        let health = session.health();
        assert_eq!(health.live, health.configured, "pool lost workers");
        assert!(session.recognize(&faulty, &text, 8).accepted);
    }

    // Through the budgeted stream — reusable afterwards.
    let faulty = PanicCa::new(ConvergentRidCa::new(&rid), 1);
    let mut stream = StreamSession::new(1, 64);
    let ring = stream.buffer_bytes();
    let err = stream
        .recognize_stream_budgeted(&faulty, Cursor::new(&text), &roomy)
        .unwrap_err();
    assert!(matches!(err, StreamError::Panicked(_)), "{err}");
    assert_eq!(stream.buffer_bytes(), ring);
    let out = stream
        .recognize_stream(&faulty, Cursor::new(&text))
        .unwrap();
    assert!(out.accepted);
}

#[test]
fn construction_budgets_turn_state_explosions_into_typed_errors() {
    // [ab]*a[ab]{22} determinizes to millions of states (hundreds of MiB
    // of table): the budget must fail it early and typed, with the peak
    // heap growth bounded near the cap — proof the construction stopped
    // *before* the blow-up rather than after.
    let ast = regex::parse(&state_explosion_pattern(22)).unwrap();
    let nfa = glushkov::build(&ast).unwrap();
    const CAP_BYTES: usize = 64 << 10;
    let peak_before = ALLOC.peak.load(Ordering::SeqCst);

    let budget = ConstructionBudget::with_max_table_bytes(CAP_BYTES);
    let err = ridfa::automata::dfa::powerset::determinize_budgeted(&nfa, &budget).unwrap_err();
    assert!(matches!(err, Error::LimitExceeded { .. }), "{err}");
    let err = RiDfa::from_nfa_budgeted(&nfa, &budget).unwrap_err();
    assert!(matches!(err, Error::LimitExceeded { .. }), "{err}");

    let peak_growth = ALLOC.peak.load(Ordering::SeqCst) - peak_before;
    // Generous slack over the 64 KiB cap for subset bookkeeping and
    // concurrent tests in this binary; an unbudgeted run would blow
    // hundreds of MiB past it.
    assert!(
        peak_growth < 16 << 20,
        "peak grew {peak_growth} bytes despite a {CAP_BYTES}-byte cap"
    );

    // State caps produce the same typed error across all constructions.
    let small = ConstructionBudget::with_max_states(16);
    assert!(matches!(
        ridfa::automata::dfa::powerset::determinize_budgeted(&nfa, &small),
        Err(Error::LimitExceeded { limit: 16, .. })
    ));
    assert!(RiDfa::from_nfa_budgeted(&nfa, &small).is_err());
    let tame = regex::parse("[ab]*a[ab]{2}").unwrap();
    let dfa = ridfa::automata::dfa::powerset::determinize(&glushkov::build(&tame).unwrap());
    assert!(matches!(
        Sfa::build_budgeted(&dfa, &ConstructionBudget::with_max_states(1)),
        Err(Error::LimitExceeded { .. })
    ));

    // Within budget, construction succeeds and recognizes normally.
    let ok_budget = ConstructionBudget::with_max_table_bytes(64 << 20);
    let tame_nfa = glushkov::build(&tame).unwrap();
    let rid = RiDfa::from_nfa_budgeted(&tame_nfa, &ok_budget).unwrap();
    let ca = RidCa::new(&rid);
    assert!(
        recognize_budgeted(&ca, b"abbaab", 2, Executor::Serial, &Budget::unlimited())
            .unwrap()
            .accepted
    );
}

/// The hostile-client serving knobs shared by the single-shard and
/// sharded runs.
fn hostile_config() -> ServeConfig {
    ServeConfig {
        request_deadline: Some(Duration::from_millis(150)),
        idle_timeout: Some(Duration::from_millis(400)),
        ..ServeConfig::default()
    }
}

/// Hostile loopback clients — stalling mid-request, writing garbage,
/// resetting mid-frame — must never wedge the serve loop or starve a
/// well-behaved client, and every casualty must land in a typed counter.
/// Runs unchanged against any shard count (the `server` decides).
fn hostile_clients_scenario(mut server: Server) {
    use std::io::Write as _;
    use std::net::TcpStream;

    let cancel = CancelToken::new();
    server.set_cancel(cancel.clone());
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    // Stalling client: one header byte, then silence. The per-request
    // deadline must answer Status::Deadline — the loop does not wait.
    let staller = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&[protocol::MAGIC]).unwrap();
        let response = protocol::read_response(&mut stream).unwrap();
        assert_eq!(response.status, Status::Deadline);
    });

    // Garbage client: wrong magic. Typed protocol error, then close.
    let garbage = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(b"\xffnot-a-frame").unwrap();
        let response = protocol::read_response(&mut stream).unwrap();
        assert_eq!(response.status, Status::Protocol);
    });

    // Resetting client: half a frame, then a dropped socket. Must count
    // as an I/O casualty, nothing more.
    let resetter = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let frame = protocol::encode_request("abb", b"abababab").unwrap();
        stream.write_all(&frame[..frame.len() / 2]).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        drop(stream);
    });

    // Idle client: connects and says nothing; the idle timeout reaps it.
    let idler = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(700));
        drop(stream);
    });

    // Trickle client: a valid request dribbled a few bytes at a time —
    // slow but inside the deadline, so the verdict must be exact.
    let trickler = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let frame = protocol::encode_request("digits", b"0123456789").unwrap();
        for piece in frame.chunks(3) {
            stream.write_all(piece).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        let response = protocol::read_response(&mut stream).unwrap();
        assert_eq!(response.status, Status::Accepted);
        assert_eq!(response.scanned, 10);
    });

    // The well-behaved client runs throughout the chaos; every verdict
    // must stay correct and prompt.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for round in 0..20 {
        let (body, want): (&[u8], Status) = if round % 2 == 0 {
            (b"bababb", Status::Accepted)
        } else {
            (b"bab", Status::Rejected)
        };
        let response = protocol::query(&mut stream, "abb", body).unwrap();
        assert_eq!(response.status, want, "round {round}");
    }
    drop(stream);

    staller.join().unwrap();
    garbage.join().unwrap();
    resetter.join().unwrap();
    idler.join().unwrap();
    trickler.join().unwrap();
    cancel.cancel();
    let report = server_thread.join().unwrap();

    assert_eq!(report.tally.deadline_errors, 1, "{:?}", report.tally);
    assert_eq!(report.tally.protocol_errors, 1, "{:?}", report.tally);
    assert!(report.tally.io_errors >= 1, "{:?}", report.tally);
    assert!(report.tally.idle_closed >= 1, "{:?}", report.tally);
    assert_eq!(report.tally.accepted, 11, "{:?}", report.tally);
    assert_eq!(report.tally.rejected, 10, "{:?}", report.tally);
    assert_eq!(report.tally.connections, 6, "{:?}", report.tally);
    // Every connection is accounted for — none leaked past shutdown.
    assert_eq!(report.connections.len(), 6);
}

fn hostile_registry_config() -> RegistryConfig {
    RegistryConfig {
        num_workers: 2,
        block_size: 128,
        ..RegistryConfig::default()
    }
}

#[test]
fn hostile_clients_never_wedge_the_serve_loop() {
    let mut registry = PatternRegistry::new(hostile_registry_config());
    registry.insert_regex("abb", "(a|b)*abb").unwrap();
    registry.insert_regex("digits", "[0-9]+").unwrap();
    let server = Server::bind("127.0.0.1:0", registry, hostile_config()).unwrap();
    hostile_clients_scenario(server);
}

/// The identical hostile workload against a 2-shard server: every typed
/// casualty counter must come out the same after cross-shard
/// reconciliation — sharding may not change containment semantics.
#[test]
fn hostile_clients_never_wedge_a_sharded_server() {
    let spec = PatternSpec::parse(
        "abb (a|b)*abb\ndigits [0-9]+\n",
        &ConstructionBudget::UNLIMITED,
        None,
    )
    .unwrap();
    let server = Server::bind_spec(
        "127.0.0.1:0",
        spec,
        hostile_registry_config(),
        ServeConfig {
            shards: 2,
            ..hostile_config()
        },
    )
    .unwrap();
    hostile_clients_scenario(server);
}

/// A client that sends pipelined requests but never reads responses hits
/// the write high-water mark: the server parks the connection instead of
/// buffering without bound, and other clients keep being served.
#[test]
fn never_reading_client_is_parked_not_buffered() {
    use std::io::Write as _;
    use std::net::TcpStream;

    let mut registry = PatternRegistry::new(RegistryConfig {
        num_workers: 1,
        ..RegistryConfig::default()
    });
    registry.insert_regex("digits", "[0-9]+").unwrap();

    let mut server = Server::bind(
        "127.0.0.1:0",
        registry,
        ServeConfig {
            idle_timeout: Some(Duration::from_secs(5)),
            max_pending_response_bytes: 32,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let cancel = CancelToken::new();
    server.set_cancel(cancel.clone());
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    // Flood requests without ever reading a response.
    let mut flood = TcpStream::connect(addr).unwrap();
    let frame = protocol::encode_request("digits", b"123").unwrap();
    for _ in 0..200 {
        if flood.write_all(&frame).is_err() {
            break; // kernel buffers filled — exactly the point
        }
    }

    // A polite client on another connection is unaffected.
    let mut polite = TcpStream::connect(addr).unwrap();
    polite
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for _ in 0..5 {
        let response = protocol::query(&mut polite, "digits", b"42").unwrap();
        assert_eq!(response.status, Status::Accepted);
    }
    drop(polite);
    drop(flood);
    cancel.cancel();
    let report = server_thread.join().unwrap();
    assert!(report.tally.accepted >= 5, "{:?}", report.tally);
}
