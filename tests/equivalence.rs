//! Property tests: the whole construction pipeline defines one language.
//!
//! For random regular expressions (via the REgen-style generator), the
//! Glushkov NFA, the Thompson NFA, the powerset DFA, the minimal DFA, the
//! RI-DFA, and the interface-minimized RI-DFA must all agree — both on
//! strings sampled *from* the language and on random byte strings.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ridfa::automata::dfa::{equivalence, minimize, powerset};
use ridfa::automata::nfa::{glushkov, thompson};
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::regen::{random_ast, sample_into, RegenConfig};

fn config() -> RegenConfig {
    RegenConfig {
        alphabet: b"abc".to_vec(),
        max_depth: 3,
        max_width: 3,
        star_percent: 30,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn glushkov_equals_thompson_as_dfas(seed in any::<u64>()) {
        let ast = random_ast(&config(), seed);
        let g = powerset::determinize(&glushkov::build(&ast).unwrap());
        let t = powerset::determinize(&thompson::build(&ast).unwrap());
        prop_assert!(
            equivalence::equivalent(&g, &t),
            "Glushkov and Thompson disagree on {} (counterexample {:?})",
            ast,
            equivalence::counterexample(&g, &t),
        );
    }

    #[test]
    fn minimization_preserves_language(seed in any::<u64>()) {
        let ast = random_ast(&config(), seed);
        let dfa = powerset::determinize(&glushkov::build(&ast).unwrap());
        let min = minimize::minimize(&dfa);
        prop_assert!(equivalence::equivalent(&dfa, &min), "{}", ast);
        prop_assert!(min.num_states() <= dfa.num_states());
    }

    #[test]
    fn minimal_dfa_is_minimal(seed in any::<u64>()) {
        let ast = random_ast(&config(), seed);
        let min = minimize::minimize(&powerset::determinize(&glushkov::build(&ast).unwrap()));
        let classes = minimize::equivalence_classes(&min);
        let mut distinct = classes.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(distinct.len(), min.num_states(), "no equivalent pair survives");
    }

    #[test]
    fn ridfa_accepts_sampled_members(seed in any::<u64>(), text_seed in any::<u64>()) {
        // Theorem 3.1 (positive direction): every sampled member of L is
        // accepted by the RI-DFA's serial run.
        let ast = random_ast(&config(), seed);
        let nfa = glushkov::build(&ast).unwrap();
        let rid = RiDfa::from_nfa(&nfa);
        let mut rng = SmallRng::seed_from_u64(text_seed);
        let mut text = Vec::new();
        sample_into(&ast, &mut rng, &mut text);
        prop_assert!(nfa.accepts(&text), "sampler broken for {}", ast);
        prop_assert!(rid.accepts(&text), "RI-DFA rejects a member of {}", ast);
        prop_assert!(rid.minimized().accepts(&text));
    }

    #[test]
    fn ridfa_agrees_on_arbitrary_strings(
        seed in any::<u64>(),
        text in proptest::collection::vec(proptest::sample::select(b"abc!".to_vec()), 0..64),
    ) {
        // Theorem 3.1 (both directions) on arbitrary inputs, including a
        // byte outside the pattern alphabet.
        let ast = random_ast(&config(), seed);
        let nfa = glushkov::build(&ast).unwrap();
        let rid = RiDfa::from_nfa(&nfa);
        let min = rid.minimized();
        let expected = nfa.accepts(&text);
        prop_assert_eq!(expected, rid.accepts(&text));
        prop_assert_eq!(expected, min.accepts(&text));
    }

    #[test]
    fn parser_printer_roundtrip(seed in any::<u64>()) {
        let ast = random_ast(&config(), seed);
        let printed = ast.to_string();
        let reparsed = ridfa::automata::regex::parse(&printed).unwrap();
        prop_assert_eq!(ast, reparsed, "printed form: {}", printed);
    }
}

#[test]
fn sfa_agrees_with_dfa_on_samples() {
    use ridfa::core::sfa::{Sfa, SfaCa};
    use ridfa::core::csdpa::{recognize, Executor};
    for seed in 0..20u64 {
        let ast = random_ast(&config(), seed);
        let dfa = minimize::minimize(&powerset::determinize(&glushkov::build(&ast).unwrap()));
        let Ok(sfa) = Sfa::build_limited(&dfa, 1 << 14) else {
            continue; // function-space explosion: skip, that is SFA's flaw
        };
        let ca = SfaCa::new(&sfa);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut text = Vec::new();
        sample_into(&ast, &mut rng, &mut text);
        let out = recognize(&ca, &text, 3, Executor::Serial);
        assert_eq!(out.accepted, dfa.accepts(&text), "seed {seed} ast {ast}");
    }
}
