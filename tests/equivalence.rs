//! Randomized tests: the whole construction pipeline defines one language.
//!
//! For random regular expressions (via the REgen-style generator), the
//! Glushkov NFA, the Thompson NFA, the powerset DFA, the minimal DFA, the
//! RI-DFA, and the interface-minimized RI-DFA must all agree — both on
//! strings sampled *from* the language and on random byte strings.
//! Formerly a proptest suite; rewritten as seeded loops so the workspace
//! carries no external test framework.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ridfa::automata::dfa::{equivalence, minimize, powerset};
use ridfa::automata::nfa::{glushkov, thompson};
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::regen::{random_ast, sample_into, RegenConfig};

const CASES: u64 = 64;

fn config() -> RegenConfig {
    RegenConfig {
        alphabet: b"abc".to_vec(),
        max_depth: 3,
        max_width: 3,
        star_percent: 30,
    }
}

#[test]
fn glushkov_equals_thompson_as_dfas() {
    for seed in 0..CASES {
        let ast = random_ast(&config(), seed);
        let g = powerset::determinize(&glushkov::build(&ast).unwrap());
        let t = powerset::determinize(&thompson::build(&ast).unwrap());
        assert!(
            equivalence::equivalent(&g, &t),
            "Glushkov and Thompson disagree on {} (counterexample {:?})",
            ast,
            equivalence::counterexample(&g, &t),
        );
    }
}

#[test]
fn minimization_preserves_language() {
    for seed in 0..CASES {
        let ast = random_ast(&config(), seed);
        let dfa = powerset::determinize(&glushkov::build(&ast).unwrap());
        let min = minimize::minimize(&dfa);
        assert!(equivalence::equivalent(&dfa, &min), "{ast}");
        assert!(min.num_states() <= dfa.num_states());
    }
}

#[test]
fn minimal_dfa_is_minimal() {
    for seed in 0..CASES {
        let ast = random_ast(&config(), seed);
        let min = minimize::minimize(&powerset::determinize(&glushkov::build(&ast).unwrap()));
        let classes = minimize::equivalence_classes(&min);
        let mut distinct = classes.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(
            distinct.len(),
            min.num_states(),
            "no equivalent pair survives ({ast})"
        );
    }
}

#[test]
fn ridfa_accepts_sampled_members() {
    // Theorem 3.1 (positive direction): every sampled member of L is
    // accepted by the RI-DFA's serial run.
    for seed in 0..CASES {
        let ast = random_ast(&config(), seed);
        let nfa = glushkov::build(&ast).unwrap();
        let rid = RiDfa::from_nfa(&nfa);
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37) ^ 1);
        let mut text = Vec::new();
        sample_into(&ast, &mut rng, &mut text);
        assert!(nfa.accepts(&text), "sampler broken for {ast}");
        assert!(rid.accepts(&text), "RI-DFA rejects a member of {ast}");
        assert!(rid.minimized().accepts(&text));
    }
}

#[test]
fn ridfa_agrees_on_arbitrary_strings() {
    // Theorem 3.1 (both directions) on arbitrary inputs, including a
    // byte outside the pattern alphabet.
    for seed in 0..CASES {
        let ast = random_ast(&config(), seed);
        let nfa = glushkov::build(&ast).unwrap();
        let rid = RiDfa::from_nfa(&nfa);
        let min = rid.minimized();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1CE);
        let len = rng.gen_range(0..64usize);
        let text: Vec<u8> = (0..len)
            .map(|_| b"abc!"[rng.gen_range(0..4usize)])
            .collect();
        let expected = nfa.accepts(&text);
        assert_eq!(expected, rid.accepts(&text), "{ast} on {text:?}");
        assert_eq!(expected, min.accepts(&text), "{ast} on {text:?}");
    }
}

#[test]
fn parser_printer_roundtrip() {
    for seed in 0..CASES {
        let ast = random_ast(&config(), seed);
        let printed = ast.to_string();
        let reparsed = ridfa::automata::regex::parse(&printed).unwrap();
        assert_eq!(ast, reparsed, "printed form: {printed}");
    }
}

#[test]
fn sfa_agrees_with_dfa_on_samples() {
    use ridfa::core::csdpa::{recognize, Executor};
    use ridfa::core::sfa::{Sfa, SfaCa};
    for seed in 0..20u64 {
        let ast = random_ast(&config(), seed);
        let dfa = minimize::minimize(&powerset::determinize(&glushkov::build(&ast).unwrap()));
        let Ok(sfa) = Sfa::build_limited(&dfa, 1 << 14) else {
            continue; // function-space explosion: skip, that is SFA's flaw
        };
        let ca = SfaCa::new(&sfa);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut text = Vec::new();
        sample_into(&ast, &mut rng, &mut text);
        let out = recognize(&ca, &text, 3, Executor::Serial);
        assert_eq!(out.accepted, dfa.accepts(&text), "seed {seed} ast {ast}");
    }
}
