//! Randomized tests: the parallel device equals the serial recognizer for
//! every chunk automaton variant, every chunk count, and every executor.
//! This is the end-to-end correctness statement of the CSDPA scheme
//! (paper Sect. 2) and of the RID refinement (Theorem 3.1 + Sect. 3.4).
//! Formerly a proptest suite; rewritten as seeded loops so the workspace
//! carries no external test framework.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ridfa::automata::dfa::{minimize, powerset};
use ridfa::automata::nfa::glushkov;
use ridfa::core::csdpa::{recognize, DfaCa, Executor, NfaCa, RidCa};
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::regen::{random_ast, sample_into, RegenConfig};

const CASES: u64 = 48;

fn config() -> RegenConfig {
    RegenConfig {
        alphabet: b"ab".to_vec(),
        max_depth: 3,
        max_width: 3,
        star_percent: 35,
    }
}

/// A text that is *usually* in the language (sampled, possibly perturbed).
fn make_text(ast: &ridfa::automata::regex::Ast, seed: u64, perturb: bool) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut text = Vec::new();
    for _ in 0..8 {
        sample_into(ast, &mut rng, &mut text);
    }
    if perturb && !text.is_empty() {
        let i = (seed as usize) % text.len();
        text[i] = if text[i] == b'a' { b'b' } else { b'a' };
    }
    text
}

#[test]
fn parallel_equals_serial_for_all_variants() {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
        let text_seed = seed.wrapping_mul(0x9E3779B9).wrapping_add(7);
        let perturb = rng.gen_bool(0.5);
        let chunks = rng.gen_range(1..12usize);
        // Stars make the 8-fold sample likely—but not guaranteed—to stay
        // in L; `perturb` flips one byte so rejection paths are exercised.
        let ast = {
            let core = random_ast(&config(), seed);
            ridfa::automata::regex::Ast::star(core)
        };
        let nfa = glushkov::build(&ast).unwrap();
        let dfa = minimize::minimize(&powerset::determinize(&nfa));
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let text = make_text(&ast, text_seed, perturb);
        let expected = dfa.accepts(&text);

        let dfa_ca = DfaCa::new(&dfa);
        let nfa_ca = NfaCa::new(&nfa);
        let rid_ca = RidCa::new(&rid);
        for executor in [Executor::Serial, Executor::PerChunk, Executor::Team(3)] {
            assert_eq!(
                recognize(&dfa_ca, &text, chunks, executor).accepted,
                expected,
                "seed {seed}, dfa variant, {executor:?}, {chunks} chunks"
            );
            assert_eq!(
                recognize(&nfa_ca, &text, chunks, executor).accepted,
                expected,
                "seed {seed}, nfa variant, {executor:?}, {chunks} chunks"
            );
            assert_eq!(
                recognize(&rid_ca, &text, chunks, executor).accepted,
                expected,
                "seed {seed}, rid variant, {executor:?}, {chunks} chunks"
            );
        }
    }
}

#[test]
fn chunk_count_never_changes_the_verdict() {
    for seed in 0..CASES {
        let text_seed = seed.wrapping_mul(0xABCD_EF01).wrapping_add(3);
        let ast = random_ast(&config(), seed);
        let nfa = glushkov::build(&ast).unwrap();
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let ca = RidCa::new(&rid);
        let text = make_text(&ast, text_seed, false);
        let baseline = recognize(&ca, &text, 1, Executor::Serial).accepted;
        for chunks in [2usize, 3, 5, 8, 13, 21, 100] {
            assert_eq!(
                recognize(&ca, &text, chunks, Executor::PerChunk).accepted,
                baseline,
                "seed {seed}, {chunks} chunks"
            );
        }
    }
}

#[test]
fn workload_benchmarks_all_variants_agree() {
    // End-to-end on the real benchmark generators (small sizes).
    for b in ridfa::workloads::standard_benchmarks() {
        let nfa = &b.nfa;
        let dfa = minimize::minimize(&powerset::determinize(nfa));
        let rid = RiDfa::from_nfa(nfa).minimized();
        let dfa_ca = DfaCa::new(&dfa);
        let nfa_ca = NfaCa::new(nfa);
        let rid_ca = RidCa::new(&rid);
        for (text, expected) in [
            ((b.accepted)(16 << 10, 5), true),
            ((b.rejected)(16 << 10, 5), false),
        ] {
            for chunks in [1usize, 4, 32] {
                let executor = Executor::Team(4);
                assert_eq!(
                    recognize(&dfa_ca, &text, chunks, executor).accepted,
                    expected,
                    "{} dfa {} chunks",
                    b.name,
                    chunks
                );
                assert_eq!(
                    recognize(&nfa_ca, &text, chunks, executor).accepted,
                    expected,
                    "{} nfa {} chunks",
                    b.name,
                    chunks
                );
                assert_eq!(
                    recognize(&rid_ca, &text, chunks, executor).accepted,
                    expected,
                    "{} rid {} chunks",
                    b.name,
                    chunks
                );
            }
        }
    }
}

#[test]
fn single_byte_and_empty_texts() {
    for b in ridfa::workloads::standard_benchmarks() {
        let rid = RiDfa::from_nfa(&b.nfa).minimized();
        let ca = RidCa::new(&rid);
        for text in [&b""[..], b"a", b"\x00", b"\xff"] {
            let expected = b.nfa.accepts(text);
            for chunks in [1usize, 2, 8] {
                assert_eq!(
                    recognize(&ca, text, chunks, Executor::PerChunk).accepted,
                    expected,
                    "{} on {:?} with {} chunks",
                    b.name,
                    text,
                    chunks
                );
            }
        }
    }
}
