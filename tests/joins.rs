//! Differential tests pinning the λ-composition refactor: every
//! `join_with` is now a fold over `compose_into`, and must agree exactly
//! with the *legacy* PLAS-set join algorithms it replaced (reimplemented
//! here from the pre-refactor code), with the serial oracle, and with
//! itself under re-association.

use ridfa::automata::dfa::{minimize, powerset, Dfa};
use ridfa::automata::nfa::{glushkov, Nfa, Simulator};
use ridfa::automata::{NoCount, StateId, DEAD};
use ridfa::core::csdpa::{
    ChunkAutomaton, ConvergentDfaCa, ConvergentRidCa, DfaCa, NfaCa, RidCa, RidMapping,
};
use ridfa::core::ridfa::RiDfa;
use ridfa::core::sfa::{Sfa, SfaCa};
use ridfa::workloads::regen::{random_ast, sample_into, RegenConfig};

use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};

/// The pre-refactor DFA join: a PLAS-set fold starting at `{q0}`.
fn legacy_join_dfa(dfa: &Dfa, mappings: &[Vec<StateId>]) -> bool {
    let mut plas = vec![dfa.start()];
    for mapping in mappings {
        let mut next: Vec<StateId> = plas
            .iter()
            .map(|&s| mapping[s as usize])
            .filter(|&t| t != DEAD)
            .collect();
        next.sort_unstable();
        next.dedup();
        plas = next;
        if plas.is_empty() {
            return false;
        }
    }
    plas.iter().any(|&s| dfa.is_final(s))
}

/// The pre-refactor NFA join.
fn legacy_join_nfa(nfa: &Nfa, mappings: &[Vec<Vec<StateId>>]) -> bool {
    let mut plas = vec![nfa.start()];
    for mapping in mappings {
        let mut next = Vec::new();
        for &q in plas.iter() {
            next.extend_from_slice(&mapping[q as usize]);
        }
        next.sort_unstable();
        next.dedup();
        plas = next;
        if plas.is_empty() {
            return false;
        }
    }
    plas.iter().any(|&q| nfa.is_final(q))
}

/// The pre-refactor RID join: `PLASᵢ = λᵢ(if(PLASᵢ₋₁))`.
fn legacy_join_rid(rid: &RiDfa, mappings: &[RidMapping]) -> bool {
    let mut pos = vec![u32::MAX; rid.num_states()];
    for (i, &p) in rid.interface().iter().enumerate() {
        pos[p as usize] = i as u32;
    }
    let mut plas: Vec<StateId> = Vec::new();
    let mut pis = Vec::new();
    for (i, mapping) in mappings.iter().enumerate() {
        match mapping {
            RidMapping::First(last) => {
                assert_eq!(i, 0, "First mapping only at chunk 1");
                plas.clear();
                if *last != DEAD {
                    plas.push(*last);
                }
            }
            RidMapping::Interior(lasts) => {
                rid.interface_map(&plas, &mut pis);
                plas.clear();
                for &p in pis.iter() {
                    let last = lasts[pos[p as usize] as usize];
                    if last != DEAD {
                        plas.push(last);
                    }
                }
                plas.sort_unstable();
                plas.dedup();
            }
            other => panic!("scans never produce {other:?}"),
        }
        if plas.is_empty() {
            return false;
        }
    }
    plas.iter().any(|&p| rid.is_final(p))
}

/// The pre-refactor SFA join: thread `q0` through the chunk functions.
fn legacy_join_sfa(dfa: &Dfa, sfa: &Sfa, mappings: &[StateId]) -> bool {
    let mut q = dfa.start();
    for &s in mappings {
        q = sfa.function(s)[q as usize];
        if q == DEAD {
            return false;
        }
    }
    dfa.is_final(q)
}

/// Splits `text` into `chunks` spans and produces the CA's mappings the
/// way the reach phase does (first chunk non-speculative).
fn scan_mappings<CA: ChunkAutomaton>(ca: &CA, text: &[u8], chunks: usize) -> Vec<CA::Mapping> {
    ridfa::core::csdpa::chunk_spans(text.len(), chunks)
        .into_iter()
        .enumerate()
        .map(|(i, span)| {
            if i == 0 {
                ca.scan_first(&text[span], &mut NoCount)
            } else {
                ca.scan(&text[span], &mut NoCount)
            }
        })
        .collect()
}

#[test]
fn fold_joins_agree_with_legacy_joins_on_random_cases() {
    let config = RegenConfig {
        alphabet: b"ab".to_vec(),
        max_depth: 3,
        max_width: 3,
        star_percent: 35,
    };
    let mut rng = StdRng::seed_from_u64(0x10A0);
    for seed in 0..40u64 {
        let ast = random_ast(&config, seed);
        let nfa = glushkov::build(&ast).unwrap();
        let dfa = minimize::minimize(&powerset::determinize(&nfa));
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let sfa = Sfa::build_limited(&dfa, 1 << 14).ok();

        let dfa_ca = DfaCa::new(&dfa);
        let nfa_ca = NfaCa::new(&nfa);
        let rid_ca = RidCa::new(&rid);
        let conv_dfa = ConvergentDfaCa::new(&dfa);
        let conv_rid = ConvergentRidCa::new(&rid);

        let mut sampler = SmallRng::seed_from_u64(seed ^ 0xFEED);
        let mut text = Vec::new();
        for _ in 0..rng.gen_range(1..5usize) {
            sample_into(&ast, &mut sampler, &mut text);
        }
        if rng.gen_ratio(1, 2) && !text.is_empty() {
            let i = rng.gen_range(0..text.len());
            text[i] = if text[i] == b'a' { b'b' } else { b'a' };
        }
        let expected = dfa.accepts(&text);

        for chunks in [1usize, 2, 3, 5, 9] {
            let m = scan_mappings(&dfa_ca, &text, chunks);
            assert_eq!(dfa_ca.join(&m), expected, "seed {seed} dfa c={chunks}");
            assert_eq!(
                legacy_join_dfa(&dfa, &m),
                expected,
                "seed {seed} legacy dfa c={chunks}"
            );

            let m = scan_mappings(&conv_dfa, &text, chunks);
            assert_eq!(
                conv_dfa.join(&m),
                expected,
                "seed {seed} dfa+conv c={chunks}"
            );
            assert_eq!(legacy_join_dfa(&dfa, &m), expected);

            let m = scan_mappings(&nfa_ca, &text, chunks);
            assert_eq!(nfa_ca.join(&m), expected, "seed {seed} nfa c={chunks}");
            assert_eq!(
                legacy_join_nfa(&nfa, &m),
                expected,
                "seed {seed} legacy nfa c={chunks}"
            );

            let m = scan_mappings(&rid_ca, &text, chunks);
            assert_eq!(rid_ca.join(&m), expected, "seed {seed} rid c={chunks}");
            assert_eq!(
                legacy_join_rid(&rid, &m),
                expected,
                "seed {seed} legacy rid c={chunks}"
            );

            let m = scan_mappings(&conv_rid, &text, chunks);
            assert_eq!(
                conv_rid.join(&m),
                expected,
                "seed {seed} rid+conv c={chunks}"
            );
            assert_eq!(legacy_join_rid(&rid, &m), expected);

            if let Some(sfa) = &sfa {
                let sfa_ca = SfaCa::new(sfa);
                let m = scan_mappings(&sfa_ca, &text, chunks);
                assert_eq!(sfa_ca.join(&m), expected, "seed {seed} sfa c={chunks}");
                assert_eq!(
                    legacy_join_sfa(&dfa, sfa, &m),
                    expected,
                    "seed {seed} legacy sfa c={chunks}"
                );
            }
        }
    }
}

/// λ-composition must be associative — the property the tree-reduce join
/// and the streaming fold both lean on. Checked on the *mapping values*
/// (not just verdicts) for every CA whose mapping type is comparable.
#[test]
fn composition_is_associative_on_mapping_values() {
    let config = RegenConfig {
        alphabet: b"ab".to_vec(),
        max_depth: 3,
        max_width: 3,
        star_percent: 40,
    };
    for seed in 0..24u64 {
        let ast = random_ast(&config, seed);
        let nfa = glushkov::build(&ast).unwrap();
        let dfa = minimize::minimize(&powerset::determinize(&nfa));
        let rid = RiDfa::from_nfa(&nfa).minimized();

        let mut sampler = SmallRng::seed_from_u64(seed ^ 0xA550);
        let mut text = Vec::new();
        for _ in 0..3 {
            sample_into(&ast, &mut sampler, &mut text);
        }
        text.extend_from_slice(b"abba");
        let third = text.len() / 3;
        let (c1, c2, c3) = (&text[..third], &text[third..2 * third], &text[2 * third..]);

        macro_rules! check_assoc {
            ($ca:expr, $label:literal) => {{
                let ca = $ca;
                // First-led: (m1 ⊙ m2) ⊙ m3 == m1 ⊙ (m2 ⊙ m3).
                let m1 = ca.scan_first(c1, &mut NoCount);
                let m2 = ca.scan(c2, &mut NoCount);
                let m3 = ca.scan(c3, &mut NoCount);
                let left = ca.compose(&ca.compose(&m1, &m2), &m3);
                let right = ca.compose(&m1, &ca.compose(&m2, &m3));
                assert_eq!(left, right, "seed {seed}: {} first-led", $label);
                assert_eq!(
                    ca.accepts_mapping(&left),
                    dfa.accepts(&text),
                    "seed {seed}: {} verdict",
                    $label
                );
                // Interior-only association (what interior tree nodes do).
                let i1 = ca.scan(c1, &mut NoCount);
                let left = ca.compose(&ca.compose(&i1, &m2), &m3);
                let right = ca.compose(&i1, &ca.compose(&m2, &m3));
                assert_eq!(left, right, "seed {seed}: {} interior", $label);
            }};
        }

        check_assoc!(DfaCa::new(&dfa), "dfa");
        check_assoc!(ConvergentDfaCa::new(&dfa), "dfa+conv");
        check_assoc!(NfaCa::new(&nfa), "nfa");
        check_assoc!(RidCa::new(&rid), "rid");
        check_assoc!(ConvergentRidCa::new(&rid), "rid+conv");
        if let Ok(sfa) = Sfa::build_limited(&dfa, 1 << 14) {
            check_assoc!(SfaCa::new(&sfa), "sfa");
        }
    }
}

/// The NFA simulator oracle: the composed whole-text mapping must accept
/// exactly the texts the set simulation accepts, chunked arbitrarily.
#[test]
fn composed_prefix_equals_simulator_on_every_cut() {
    let nfa = glushkov::build(&ridfa::automata::regex::parse("(a|b)*ab(b|a)?").unwrap()).unwrap();
    let rid = RiDfa::from_nfa(&nfa).minimized();
    let ca = RidCa::new(&rid);
    let texts: [&[u8]; 6] = [b"", b"a", b"ab", b"abb", b"aabbaabb", b"bababab"];
    for text in texts {
        let mut sim = Simulator::new(&nfa);
        let expected = sim.run_accepts(&nfa, &[nfa.start()], text, &mut NoCount);
        for cut1 in 0..=text.len() {
            for cut2 in cut1..=text.len() {
                let m1 = ca.scan_first(&text[..cut1], &mut NoCount);
                let m2 = ca.scan(&text[cut1..cut2], &mut NoCount);
                let m3 = ca.scan(&text[cut2..], &mut NoCount);
                let folded = ca.compose(&ca.compose(&m1, &m2), &m3);
                assert_eq!(
                    ca.accepts_mapping(&folded),
                    expected,
                    "{text:?} cuts {cut1}/{cut2}"
                );
                assert_eq!(ca.join(&[m1, m2, m3]), expected);
            }
        }
    }
}
