//! Asserts the session's allocation contract: once a [`Session`] is warm
//! (scratches pre-warmed, mapping/span/join buffers sized by a first
//! recognition), recognizing the next text performs **zero** heap
//! allocations — across the caller, the pool dispatch, and every worker
//! thread.
//!
//! Lives in its own test binary with a **single** test function: the
//! counting [`GlobalAlloc`] observes every thread in the process
//! (including the session's pool workers and the harness thread printing
//! results of concurrently finishing tests), so any parallel activity
//! would make the counter meaningless.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ridfa::core::csdpa::{ConvergentRidCa, RidCa, Session};
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::traffic;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_session_recognizes_and_batches_without_allocating() {
    let nfa = traffic::nfa();
    let rid = RiDfa::from_nfa(&nfa).minimized();
    let conv = ConvergentRidCa::new(&rid);
    let plain = RidCa::new(&rid);

    // Two equal-length texts: the second must ride entirely on buffers
    // sized by the first.
    let text1 = traffic::text(32 << 10, 1);
    let text2 = traffic::text(text1.len(), 2);
    let text2 = &text2[..text2.len().min(text1.len())];

    let mut session = Session::new(2);
    // Deterministically warm every per-worker scratch (task claiming is
    // racy, so a first recognition alone might leave a slow worker's
    // scratch cold), then size mapping/span/join buffers with full
    // recognitions.
    session.warm(&conv, &text1[..4096]);
    assert!(session.recognize(&conv, &text1, 8).accepted);
    assert!(session.recognize(&conv, &text1, 8).accepted);

    let before = allocations();
    let outcome = session.recognize(&conv, text2, 8);
    assert_eq!(
        allocations() - before,
        0,
        "a warm pooled recognition must not allocate"
    );
    assert!(outcome.accepted);

    // The contract holds for the per-run (non-convergent) CA too.
    session.warm(&plain, &text1[..4096]);
    assert!(session.recognize(&plain, &text1, 8).accepted);
    let before = allocations();
    assert!(session.recognize(&plain, text2, 8).accepted);
    assert_eq!(
        allocations() - before,
        0,
        "warm per-run recognition must not allocate"
    );

    // Batch path: recognize_many returns a fresh Vec<bool> (one
    // allocation) but the reach/join machinery itself must stay
    // allocation-free once warm.
    let texts: Vec<Vec<u8>> = (0..8).map(|s| traffic::text(4 << 10, s)).collect();
    session.warm(&conv, &texts[0]);
    let warm1 = session.recognize_many(&conv, &texts, 4);
    let warm2 = session.recognize_many(&conv, &texts, 4);
    assert_eq!(warm1, warm2);

    let before = allocations();
    let verdicts = session.recognize_many(&conv, &texts, 4);
    let delta = allocations() - before;
    assert!(
        delta <= 1,
        "warm batch allocated {delta} times (expected only the verdict vec)"
    );
    assert!(verdicts.iter().all(|&v| v));
}
