//! Parser robustness audit: 10 000 seeded random metacharacter-heavy
//! patterns, each of which must come back as `Ok(ast)` or a typed
//! `ParseError` — never a panic. Parse-only on purpose: nested counted
//! repetitions like `a{4096}{4096}` are legal to *parse* but blow up the
//! position count if built into an NFA, and that is the builder's
//! budget problem (see `ConstructionBudget`), not the parser's.

use ridfa::automata::regex;
use ridfa::faults::XorShift64;

/// Alphabet skewed towards the parser's special characters, escape
/// introducers, digits (counted repetitions), and a few literals.
const ALPHABET: &[u8] = b"()[]{}|*+?\\-^.,$xXdDwWsSnrt0123456789abAB";

#[test]
fn ten_thousand_random_garbage_patterns_never_panic() {
    let mut rng = XorShift64::new(0x0BAD_C0DE);
    let (mut ok, mut err) = (0usize, 0usize);
    for _ in 0..10_000 {
        let len = rng.below(32) as usize;
        let pattern: String = (0..len)
            .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize] as char)
            .collect();
        match regex::parse(&pattern) {
            Ok(_) => ok += 1,
            Err(error) => {
                // Errors must render (Display is part of the contract).
                err += 1;
                assert!(!error.to_string().is_empty(), "pattern {pattern:?}");
            }
        }
    }
    // The alphabet is hostile enough that both outcomes occur in bulk —
    // a fuzz run that only ever errors (or only ever parses) would mean
    // the generator stopped exercising the grammar.
    assert!(ok > 100, "only {ok} patterns parsed");
    assert!(err > 100, "only {err} patterns errored");
}

#[test]
fn multibyte_input_is_rejected_or_parsed_but_never_splits_a_char() {
    // Patterns are `&str`, so the parser sees well-formed UTF-8; classes
    // and escapes over multibyte characters must error typed, not panic.
    let mut rng = XorShift64::new(0x5EED);
    let wide = ['λ', 'é', 'ß', '☃', '😀', 'a', '[', ']', '\\', '{', '}'];
    for _ in 0..2_000 {
        let len = rng.below(16) as usize;
        let pattern: String = (0..len)
            .map(|_| wide[rng.below(wide.len() as u64) as usize])
            .collect();
        let _ = regex::parse(&pattern);
    }
}

#[test]
fn known_hostile_patterns_return_typed_errors() {
    for pattern in [
        "(",
        ")",
        "(()",
        "[",
        "[^",
        "[a-",
        "[z-a]",
        "a{",
        "a{2,1}",
        "a{99999999999999999999}",
        "\\",
        "\\x",
        "\\xg",
        "[\\",
        "[\\x4",
        "a**{3}{",
        "{3}",
        "|{2}",
        "[]",
    ] {
        let error =
            regex::parse(pattern).expect_err(&format!("pattern {pattern:?} should not parse"));
        assert!(!error.to_string().is_empty(), "pattern {pattern:?}");
    }
}
