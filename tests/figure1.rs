//! Full reproduction of the paper's Figure 1 — the worked example that
//! anchors the whole implementation. If this test fails, the semantics of
//! one of the three chunk automata drifted from the paper.

use ridfa::automata::dfa::{minimize, powerset};
use ridfa::automata::nfa::{Builder, Nfa};
use ridfa::automata::TransitionCount;
use ridfa::core::csdpa::{recognize_counted, ChunkAutomaton, DfaCa, Executor, NfaCa, RidCa};
use ridfa::core::ridfa::RiDfa;

/// The Fig. 1 NFA over Σ = {a,b,c}.
fn figure1_nfa() -> Nfa {
    let mut b = Builder::new();
    let q0 = b.add_state();
    let q1 = b.add_state();
    let q2 = b.add_state();
    b.add_transition(q0, b'a', q1);
    b.add_transition(q0, b'c', q1);
    b.add_transition(q1, b'a', q0);
    b.add_transition(q1, b'a', q1);
    b.add_transition(q1, b'b', q0);
    b.add_transition(q1, b'b', q2);
    b.add_transition(q1, b'c', q0);
    b.add_transition(q2, b'b', q1);
    b.set_start(q0);
    b.set_final(q2);
    b.build().unwrap()
}

#[test]
fn machine_sizes_match_figure1() {
    let nfa = figure1_nfa();
    assert_eq!(nfa.num_states(), 3, "NFA has 3 states");
    let dfa = minimize::minimize(&powerset::determinize(&nfa));
    assert_eq!(
        dfa.num_live_states(),
        4,
        "minimal DFA has 4 states 0,1,01,02"
    );
    let rid = RiDfa::from_nfa(&nfa);
    assert_eq!(rid.num_live_states(), 5, "RI-DFA has 5 states 0,1,2,01,02");
    assert_eq!(
        rid.interface().len(),
        3,
        "only the three singletons are initial"
    );
}

#[test]
fn transition_totals_match_figure1_bottom() {
    let nfa = figure1_nfa();
    let dfa = minimize::minimize(&powerset::determinize(&nfa));
    let rid = RiDfa::from_nfa(&nfa);

    fn total<CA: ChunkAutomaton>(ca: &CA) -> u64 {
        let mut counter = TransitionCount::default();
        let m1 = ca.scan_first(b"aab", &mut counter);
        let m2 = ca.scan(b"cab", &mut counter);
        assert!(ca.join(&[m1, m2]));
        counter.get()
    }

    assert_eq!(total(&DfaCa::new(&dfa)), 15, "classic DFA method");
    assert_eq!(total(&NfaCa::new(&nfa)), 14, "classic optimized NFA method");
    assert_eq!(total(&RidCa::new(&rid)), 9, "new RI-DFA method");
}

#[test]
fn recognize_counted_reports_the_same_totals() {
    let nfa = figure1_nfa();
    let rid = RiDfa::from_nfa(&nfa);
    let out = recognize_counted(&RidCa::new(&rid), b"aabcab", 2, Executor::PerChunk);
    assert!(out.accepted);
    assert_eq!(out.transitions, 9);
}

#[test]
fn figure2_example_semantics() {
    // Fig. 2's language L = b*a(ab*a|b+a)* over {a,b}: its two-state DFA
    // accepts exactly the strings whose 'a' count is... easier: trust the
    // machine of the figure directly.
    let mut b = Builder::new();
    let q0 = b.add_state();
    let q1 = b.add_state();
    b.add_transition(q0, b'b', q0);
    b.add_transition(q0, b'a', q1);
    b.add_transition(q1, b'a', q0);
    b.add_transition(q1, b'b', q0);
    b.set_start(q0);
    b.set_final(q1);
    let nfa = b.build().unwrap();
    // The paper's two-chunk input bab·aaa is accepted with PLAS₂ = {q1}.
    let rid = RiDfa::from_nfa(&nfa);
    let out = recognize_counted(&RidCa::new(&rid), b"babaaa", 2, Executor::PerChunk);
    assert!(out.accepted);
    // And the DFA variant agrees.
    let dfa = minimize::minimize(&powerset::determinize(&nfa));
    let out = recognize_counted(&DfaCa::new(&dfa), b"babaaa", 2, Executor::PerChunk);
    assert!(out.accepted);
}

#[test]
fn sample_string_membership() {
    let nfa = figure1_nfa();
    assert!(nfa.accepts(b"aabcab"), "the paper's sample valid string");
    assert!(!nfa.accepts(b"aabcabc"));
    assert!(!nfa.accepts(b""));
}
