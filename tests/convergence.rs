//! Property tests for the state-convergence optimization: the convergent
//! chunk automata must produce bit-identical mappings (hence identical
//! verdicts) while never executing *more* transitions than the plain scan.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use ridfa::automata::dfa::{minimize, powerset};
use ridfa::automata::nfa::glushkov;
use ridfa::automata::{NoCount, TransitionCount};
use ridfa::core::csdpa::{
    recognize, ChunkAutomaton, ConvergentDfaCa, ConvergentRidCa, DfaCa, Executor, RidCa,
};
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::regen::{random_ast, sample_into, RegenConfig};

fn config() -> RegenConfig {
    RegenConfig {
        alphabet: b"ab".to_vec(),
        max_depth: 3,
        max_width: 3,
        star_percent: 35,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn convergent_dfa_mapping_is_identical(seed in any::<u64>(), text_seed in any::<u64>()) {
        let ast = random_ast(&config(), seed);
        let dfa = minimize::minimize(&powerset::determinize(&glushkov::build(&ast).unwrap()));
        let plain = DfaCa::new(&dfa);
        let conv = ConvergentDfaCa::new(&dfa);
        let mut rng = SmallRng::seed_from_u64(text_seed);
        let mut text = Vec::new();
        for _ in 0..4 {
            sample_into(&ast, &mut rng, &mut text);
        }
        prop_assert_eq!(
            plain.scan(&text, &mut NoCount),
            conv.scan(&text, &mut NoCount),
            "ast {}", ast
        );
    }

    #[test]
    fn convergent_rid_mapping_is_identical(seed in any::<u64>(), text_seed in any::<u64>()) {
        let ast = random_ast(&config(), seed);
        let rid = RiDfa::from_nfa(&glushkov::build(&ast).unwrap()).minimized();
        let plain = RidCa::new(&rid);
        let conv = ConvergentRidCa::new(&rid);
        let mut rng = SmallRng::seed_from_u64(text_seed);
        let mut text = Vec::new();
        for _ in 0..4 {
            sample_into(&ast, &mut rng, &mut text);
        }
        prop_assert_eq!(
            plain.scan(&text, &mut NoCount),
            conv.scan(&text, &mut NoCount),
            "ast {}", ast
        );
    }

    #[test]
    fn convergence_never_increases_work(seed in any::<u64>(), text_seed in any::<u64>()) {
        let ast = random_ast(&config(), seed);
        let dfa = minimize::minimize(&powerset::determinize(&glushkov::build(&ast).unwrap()));
        let plain = DfaCa::new(&dfa);
        let conv = ConvergentDfaCa::new(&dfa);
        let mut rng = SmallRng::seed_from_u64(text_seed);
        let mut text = Vec::new();
        for _ in 0..4 {
            sample_into(&ast, &mut rng, &mut text);
        }
        let mut c_plain = TransitionCount::default();
        plain.scan(&text, &mut c_plain);
        let mut c_conv = TransitionCount::default();
        conv.scan(&text, &mut c_conv);
        prop_assert!(c_conv.get() <= c_plain.get());
    }
}

#[test]
fn convergent_variants_agree_on_benchmarks() {
    for b in ridfa::workloads::standard_benchmarks() {
        let dfa = minimize::minimize(&powerset::determinize(&b.nfa));
        let rid = RiDfa::from_nfa(&b.nfa).minimized();
        let conv_dfa = ConvergentDfaCa::new(&dfa);
        let conv_rid = ConvergentRidCa::new(&rid);
        for (text, expected) in [
            ((b.accepted)(32 << 10, 13), true),
            ((b.rejected)(32 << 10, 13), false),
        ] {
            assert_eq!(
                recognize(&conv_dfa, &text, 16, Executor::Team(4)).accepted,
                expected,
                "{} dfa+conv",
                b.name
            );
            assert_eq!(
                recognize(&conv_rid, &text, 16, Executor::Team(4)).accepted,
                expected,
                "{} rid+conv",
                b.name
            );
        }
    }
}

#[test]
fn convergence_collapses_runs_on_structured_text() {
    // On the bible benchmark the DFA has ~113 speculative runs; after a
    // few hundred bytes they converge to a handful of groups, so the
    // convergent scan executes a small fraction of the plain transitions.
    let bible = ridfa::workloads::standard_benchmarks().remove(2);
    assert_eq!(bible.name, "bible");
    let dfa = minimize::minimize(&powerset::determinize(&bible.nfa));
    let text = (bible.accepted)(64 << 10, 3);
    let mut c_plain = TransitionCount::default();
    DfaCa::new(&dfa).scan(&text, &mut c_plain);
    let mut c_conv = TransitionCount::default();
    ConvergentDfaCa::new(&dfa).scan(&text, &mut c_conv);
    assert!(
        c_conv.get() * 4 < c_plain.get(),
        "convergent {} vs plain {}",
        c_conv.get(),
        c_plain.get()
    );
}
