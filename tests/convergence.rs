//! Differential tests for the lockstep scan kernel: every kernel strategy
//! must produce byte-identical λ mappings (hence identical verdicts) to
//! per-run scanning, for the DFA and the RID chunk automata, across
//! random regexes, random texts, random chunk counts and random cut
//! points — while never executing *more* transitions than the per-run
//! scan. (Zero-allocation behaviour of the kernel is asserted separately
//! in `tests/kernel_alloc.rs`, which needs a counting global allocator
//! and therefore its own test binary.)

use rand::rngs::{SmallRng, StdRng};
use rand::{Rng, SeedableRng};

use ridfa::automata::dfa::{minimize, powerset};
use ridfa::automata::nfa::glushkov;
use ridfa::automata::{NoCount, TransitionCount};
use ridfa::core::csdpa::{
    recognize, ChunkAutomaton, ConvergentDfaCa, ConvergentRidCa, DfaCa, Executor, Kernel, RidCa,
};
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::regen::{random_ast, sample_into, RegenConfig};

const CASES: u64 = 48;

const KERNELS: [Kernel; 4] = [
    Kernel::PerRun,
    Kernel::Lockstep,
    Kernel::LockstepShared,
    Kernel::Auto,
];

fn config() -> RegenConfig {
    RegenConfig {
        alphabet: b"ab".to_vec(),
        max_depth: 3,
        max_width: 3,
        star_percent: 35,
    }
}

/// A text sampled from the language (pumped a few times so runs have room
/// to converge), seeded through `StdRng` for reproducibility.
fn random_text(ast: &ridfa::automata::regex::Ast, rng: &mut StdRng) -> Vec<u8> {
    let mut sampler = SmallRng::seed_from_u64(rng.gen_range(0..u64::MAX));
    let mut text = Vec::new();
    for _ in 0..rng.gen_range(1..6usize) {
        sample_into(ast, &mut sampler, &mut text);
    }
    text
}

#[test]
fn convergent_dfa_mapping_is_identical_at_random_cut_points() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for seed in 0..CASES {
        let ast = random_ast(&config(), seed);
        let dfa = minimize::minimize(&powerset::determinize(&glushkov::build(&ast).unwrap()));
        let plain = DfaCa::new(&dfa);
        let text = random_text(&ast, &mut rng);
        // Random cut: the interior chunk both kernels scan.
        let cut = if text.is_empty() {
            0
        } else {
            rng.gen_range(0..=text.len())
        };
        let chunk = &text[cut..];
        let expected = plain.scan(chunk, &mut NoCount);
        for kernel in KERNELS {
            let conv = ConvergentDfaCa::with_kernel(&dfa, kernel);
            assert_eq!(
                expected,
                conv.scan(chunk, &mut NoCount),
                "seed {seed}, {kernel:?}, ast {ast}, cut {cut}"
            );
        }
    }
}

#[test]
fn convergent_rid_mapping_is_identical_at_random_cut_points() {
    let mut rng = StdRng::seed_from_u64(0x51D);
    for seed in 0..CASES {
        let ast = random_ast(&config(), seed);
        let rid = RiDfa::from_nfa(&glushkov::build(&ast).unwrap()).minimized();
        let plain = RidCa::new(&rid);
        let text = random_text(&ast, &mut rng);
        let cut = if text.is_empty() {
            0
        } else {
            rng.gen_range(0..=text.len())
        };
        let chunk = &text[cut..];
        let expected = plain.scan(chunk, &mut NoCount);
        for kernel in KERNELS {
            let conv = ConvergentRidCa::with_kernel(&rid, kernel);
            assert_eq!(
                expected,
                conv.scan(chunk, &mut NoCount),
                "seed {seed}, {kernel:?}, ast {ast}, cut {cut}"
            );
        }
    }
}

#[test]
fn recognition_agrees_across_random_chunk_counts() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    for seed in 0..CASES {
        let ast = random_ast(&config(), seed);
        let nfa = glushkov::build(&ast).unwrap();
        let dfa = minimize::minimize(&powerset::determinize(&nfa));
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let mut text = random_text(&ast, &mut rng);
        if rng.gen_ratio(1, 2) && !text.is_empty() {
            // Perturb one byte so rejection paths are exercised too.
            let i = rng.gen_range(0..text.len());
            text[i] = if text[i] == b'a' { b'b' } else { b'a' };
        }
        let expected = dfa.accepts(&text);
        let chunks = rng.gen_range(1..16usize);
        for kernel in KERNELS {
            let conv_dfa = ConvergentDfaCa::with_kernel(&dfa, kernel);
            let conv_rid = ConvergentRidCa::with_kernel(&rid, kernel);
            assert_eq!(
                recognize(&conv_dfa, &text, chunks, Executor::Auto).accepted,
                expected,
                "seed {seed}, {kernel:?}, dfa, {chunks} chunks"
            );
            assert_eq!(
                recognize(&conv_rid, &text, chunks, Executor::Auto).accepted,
                expected,
                "seed {seed}, {kernel:?}, rid, {chunks} chunks"
            );
        }
    }
}

#[test]
fn convergence_never_increases_work() {
    let mut rng = StdRng::seed_from_u64(0x3AD);
    for seed in 0..CASES {
        let ast = random_ast(&config(), seed);
        let dfa = minimize::minimize(&powerset::determinize(&glushkov::build(&ast).unwrap()));
        let plain = DfaCa::new(&dfa);
        let text = random_text(&ast, &mut rng);
        let mut c_plain = TransitionCount::default();
        plain.scan(&text, &mut c_plain);
        for kernel in [Kernel::Lockstep, Kernel::LockstepShared] {
            let conv = ConvergentDfaCa::with_kernel(&dfa, kernel);
            let mut c_conv = TransitionCount::default();
            conv.scan(&text, &mut c_conv);
            assert!(
                c_conv.get() <= c_plain.get(),
                "seed {seed}, {kernel:?}: {} > plain {}",
                c_conv.get(),
                c_plain.get()
            );
        }
    }
}

#[test]
fn lockstep_beats_k_times_chunk_on_converging_text() {
    // Acceptance criterion: on a converging text the lockstep kernel
    // executes strictly fewer transitions than the per-run bound
    // `k × |chunk|` — and strictly fewer than the per-run scan itself.
    let bible = ridfa::workloads::standard_benchmarks()
        .into_iter()
        .find(|b| b.name == "bible")
        .unwrap();
    let dfa = minimize::minimize(&powerset::determinize(&bible.nfa));
    let chunk = (bible.accepted)(64 << 10, 3);
    let k = dfa.num_live_states() as u64;

    let mut c_plain = TransitionCount::default();
    DfaCa::new(&dfa).scan(&chunk, &mut c_plain);
    let mut c_conv = TransitionCount::default();
    ConvergentDfaCa::with_kernel(&dfa, Kernel::LockstepShared).scan(&chunk, &mut c_conv);

    assert!(c_plain.get() <= k * chunk.len() as u64);
    assert!(
        c_conv.get() < k * chunk.len() as u64,
        "lockstep {} must be strictly below k×|chunk| = {}",
        c_conv.get(),
        k * chunk.len() as u64
    );
    assert!(
        c_conv.get() < c_plain.get(),
        "lockstep {} must beat per-run {}",
        c_conv.get(),
        c_plain.get()
    );
    // On this benchmark convergence is dramatic, not marginal.
    assert!(
        c_conv.get() * 4 < c_plain.get(),
        "convergent {} vs plain {}",
        c_conv.get(),
        c_plain.get()
    );
}

#[test]
fn convergent_variants_agree_on_benchmarks() {
    for b in ridfa::workloads::standard_benchmarks() {
        let dfa = minimize::minimize(&powerset::determinize(&b.nfa));
        let rid = RiDfa::from_nfa(&b.nfa).minimized();
        let conv_dfa = ConvergentDfaCa::new(&dfa);
        let conv_rid = ConvergentRidCa::new(&rid);
        for (text, expected) in [
            ((b.accepted)(32 << 10, 13), true),
            ((b.rejected)(32 << 10, 13), false),
        ] {
            assert_eq!(
                recognize(&conv_dfa, &text, 16, Executor::Team(4)).accepted,
                expected,
                "{} dfa+conv",
                b.name
            );
            assert_eq!(
                recognize(&conv_rid, &text, 16, Executor::Team(4)).accepted,
                expected,
                "{} rid+conv",
                b.name
            );
        }
    }
}
