//! Integration tests for the transition-count instrumentation: the
//! quantities of Sect. 4.3 obey tight arithmetic invariants that pin down
//! the counting convention across all chunk automata.

use ridfa::automata::dfa::{minimize, powerset};
use ridfa::automata::nfa::glushkov;
use ridfa::automata::regex::parse;
use ridfa::core::csdpa::{
    recognize, recognize_counted, recognize_serial, DfaCa, Executor, NfaCa, RidCa,
};
use ridfa::core::ridfa::RiDfa;

fn artifacts(pattern: &str) -> (ridfa::automata::nfa::Nfa, ridfa::automata::dfa::Dfa, RiDfa) {
    let nfa = glushkov::build(&parse(pattern).unwrap()).unwrap();
    let dfa = minimize::minimize(&powerset::determinize(&nfa));
    let rid = RiDfa::from_nfa(&nfa).minimized();
    (nfa, dfa, rid)
}

#[test]
fn serial_run_counts_exactly_text_length_when_alive() {
    // Over [ab]-only text, the [ab]*a[ab]{k} machines never die.
    let (_, dfa, rid) = artifacts("[ab]*a[ab]{3}");
    let text = ridfa::workloads::regexp::text(3, 10_000, 1);
    let (_, dfa_count, _) = recognize_serial(&DfaCa::new(&dfa), &text);
    let (_, rid_count, _) = recognize_serial(&RidCa::new(&rid), &text);
    assert_eq!(dfa_count, text.len() as u64);
    assert_eq!(rid_count, text.len() as u64);
}

#[test]
fn dfa_parallel_cost_is_len_times_states_when_nothing_dies() {
    // T_D = Σ |y_i| × |I_i| with no premature termination: first chunk 1
    // run, interior chunks |Q| runs (paper Sect. 2).
    let (_, dfa, _) = artifacts("[ab]*a[ab]{3}");
    let text = ridfa::workloads::regexp::text(3, 9_000, 2);
    let chunks = 6usize;
    let out = recognize_counted(&DfaCa::new(&dfa), &text, chunks, Executor::Serial);
    let q = dfa.num_live_states() as u64;
    let chunk_len = (text.len() / chunks) as u64;
    let expected = chunk_len + (chunks as u64 - 1) * chunk_len * q;
    assert_eq!(out.transitions, expected);
}

#[test]
fn rid_parallel_cost_is_exactly_predictable() {
    // For [ab]*a[ab]{k}, the loop entry survives whole chunks while the
    // chain entry at depth d dies after exactly k − d steps. With the
    // minimized interface (the Glushkov initial state is equivalent to the
    // star position, so |I| = k + 2), an interior chunk costs
    // chunk_len + k + (k−1) + … + 0 transitions.
    let k = 3u64;
    let (nfa, _, rid) = artifacts("[ab]*a[ab]{3}");
    let text = ridfa::workloads::regexp::text(3, 9_000, 3);
    let chunks = 6u64;
    let out = recognize_counted(&RidCa::new(&rid), &text, chunks as usize, Executor::Serial);
    assert_eq!(rid.interface().len() as u64, k + 2);
    assert_eq!(rid.interface().len(), nfa.num_states() - 1);
    let chunk_len = text.len() as u64 / chunks;
    let dying_runs: u64 = (0..=k).sum(); // k + (k−1) + … + 0
    let expected = chunk_len + (chunks - 1) * (chunk_len + dying_runs);
    assert_eq!(out.transitions, expected);
}

#[test]
fn speculation_overhead_ordering_on_winning_benchmark() {
    // The paper's headline inequality on an explosion family:
    // RID transitions ≪ DFA transitions; serial = |text|.
    let (_, dfa, rid) = artifacts("[ab]*a[ab]{7}");
    let text = ridfa::workloads::regexp::text(7, 64_000, 4);
    let dfa_out = recognize_counted(&DfaCa::new(&dfa), &text, 16, Executor::Team(4));
    let rid_out = recognize_counted(&RidCa::new(&rid), &text, 16, Executor::Team(4));
    assert!(dfa_out.accepted && rid_out.accepted);
    assert!(
        dfa_out.transitions > 10 * rid_out.transitions,
        "DFA {} vs RID {}",
        dfa_out.transitions,
        rid_out.transitions
    );
}

#[test]
fn per_chunk_stats_sum_to_total() {
    let (nfa, _, rid) = artifacts("(a|b|c)*abc(a|b|c)*");
    let _ = nfa;
    let text = b"abcabcabcabcabcabcabcabc".repeat(64);
    let out = recognize_counted(&RidCa::new(&rid), &text, 8, Executor::PerChunk);
    let sum: u64 = out.per_chunk.iter().map(|s| s.transitions).sum();
    assert_eq!(sum, out.transitions);
    let len_sum: usize = out.per_chunk.iter().map(|s| s.len).sum();
    assert_eq!(len_sum, text.len());
}

#[test]
fn counted_and_uncounted_agree_on_acceptance() {
    for b in ridfa::workloads::standard_benchmarks() {
        let rid = RiDfa::from_nfa(&b.nfa).minimized();
        let ca = RidCa::new(&rid);
        let text = (b.accepted)(32 << 10, 9);
        let fast = recognize(&ca, &text, 8, Executor::Team(4)).accepted;
        let counted = recognize_counted(&ca, &text, 8, Executor::Team(4)).accepted;
        assert_eq!(fast, counted, "{}", b.name);
    }
}

#[test]
fn nfa_counts_exceed_dfa_counts_on_nondeterministic_family() {
    // Set-simulation traverses multiple edges per byte where the
    // deterministic run traverses one.
    let (nfa, dfa, _) = artifacts("[ab]*a[ab]{4}");
    let text = ridfa::workloads::regexp::text(4, 8_000, 5);
    let (acc_n, count_n, _) = recognize_serial(&NfaCa::new(&nfa), &text);
    let (acc_d, count_d, _) = recognize_serial(&DfaCa::new(&dfa), &text);
    assert!(acc_n && acc_d);
    assert!(count_n > count_d, "NFA {} vs DFA {}", count_n, count_d);
}

#[test]
fn dying_runs_cut_the_bill() {
    // On a structured language, most speculative DFA runs die quickly, so
    // the measured cost sits far below the worst case n×|Q| (the paper's
    // practical observation in Sect. 1).
    let (_, dfa, _) = artifacts("(xyz)*");
    let mut text = Vec::new();
    for _ in 0..2_000 {
        text.extend_from_slice(b"xyz");
    }
    let out = recognize_counted(&DfaCa::new(&dfa), &text, 8, Executor::Serial);
    assert!(out.accepted);
    let worst = text.len() as u64 * dfa.num_live_states() as u64;
    assert!(
        out.transitions * 2 < worst,
        "measured {} vs worst case {}",
        out.transitions,
        worst
    );
}
