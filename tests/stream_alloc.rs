//! Asserts the streaming allocation contract: once a [`StreamSession`]
//! is warm (scratches, ring mapping slots, and composition accumulators
//! sized by `warm` plus one full stream), recognizing a whole stream —
//! dozens of blocks of reads, scans, and eager compositions — performs
//! **zero** heap allocations, across the caller, the pool dispatch, and
//! every worker thread. Together with the constant block ring
//! (`buffer_bytes`), this is the O(workers · block_size) memory proof.
//!
//! Lives in its own test binary with a single test function: the
//! counting `GlobalAlloc` observes every thread in the process, so any
//! parallel test activity would make the counter meaningless.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ridfa::core::csdpa::{ConvergentRidCa, Kernel, RidCa, StreamSession};
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::traffic;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_stream_session_allocates_nothing_per_block() {
    let nfa = traffic::nfa();
    let rid = RiDfa::from_nfa(&nfa).minimized();
    let conv = ConvergentRidCa::new(&rid);
    let plain = RidCa::new(&rid);

    // In-memory streams (a slice is a `Read`), so the reader itself is
    // allocation-free and the counter sees only the session.
    let text1 = traffic::text(4 << 20, 1);
    let text2 = traffic::text(4 << 20, 2);

    // 64 KiB blocks → the 4 MiB streams cross ~64 block boundaries each.
    let mut session = StreamSession::new(2, 64 << 10);
    session.warm(&conv, &text1[..64 << 10]);
    let first = session.recognize_stream(&conv, &text1[..]).unwrap();
    assert!(first.accepted);

    let before = allocations();
    let out = session.recognize_stream(&conv, &text2[..]).unwrap();
    assert_eq!(
        allocations() - before,
        0,
        "a warm stream recognition must not allocate (streamed {} blocks)",
        out.blocks
    );
    assert!(out.accepted);
    assert_eq!(out.bytes, text2.len() as u64);
    assert!(
        out.blocks >= 60,
        "expected dozens of blocks, got {}",
        out.blocks
    );

    // Same contract for the per-run (non-convergent) CA.
    session.warm(&plain, &text1[..64 << 10]);
    let first = session.recognize_stream(&plain, &text1[..]).unwrap();
    assert!(first.accepted);
    let before = allocations();
    assert!(
        session
            .recognize_stream(&plain, &text2[..])
            .unwrap()
            .accepted
    );
    assert_eq!(
        allocations() - before,
        0,
        "warm per-run stream recognition must not allocate"
    );

    // Pin the SIMD kernel explicitly. `Auto` already routes 64 KiB
    // blocks through it on AVX2 hosts, but pinning keeps this proof
    // meaningful when feature detection changes; without AVX2 the pin
    // demotes to the shared lockstep kernel, which has the same
    // contract.
    let simd = ConvergentRidCa::with_kernel(&rid, Kernel::Simd);
    session.warm(&simd, &text1[..64 << 10]);
    let first = session.recognize_stream(&simd, &text1[..]).unwrap();
    assert!(first.accepted);
    let before = allocations();
    assert!(
        session
            .recognize_stream(&simd, &text2[..])
            .unwrap()
            .accepted
    );
    assert_eq!(
        allocations() - before,
        0,
        "warm SIMD stream recognition must not allocate"
    );

    // Twice the stream, same allocation count (i.e. zero): per-block cost
    // is exactly nothing, not merely amortized.
    let long = traffic::text(8 << 20, 3);
    session.warm(&conv, &text1[..64 << 10]);
    assert!(
        session
            .recognize_stream(&conv, &text1[..])
            .unwrap()
            .accepted
    );
    let before = allocations();
    assert!(session.recognize_stream(&conv, &long[..]).unwrap().accepted);
    assert_eq!(
        allocations() - before,
        0,
        "doubling the stream length must not introduce allocations"
    );
}
