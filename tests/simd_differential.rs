//! Differential tests for the SIMD reach kernel: the vectorized scan
//! (gathered lockstep stepping, the interleaved multi-chain finish and
//! the checkpointed single-run stride walk) must produce λ mappings
//! byte-identical to the scalar kernels — and verdicts identical to the
//! serial DFA — across the standard benchmarks, unaligned chunk starts,
//! random span layouts and every chunk-automaton type.
//!
//! Transition **counts** are deliberately never compared here: the SIMD
//! kernel charges the work it actually performs, including speculation
//! that the stride-repair pass later discards, so its counts legitimately
//! differ from the scalar kernels'. Only mappings and verdicts are
//! contractual.
//!
//! On hosts without AVX2 (or with `RIDFA_NO_SIMD` set) the pinned
//! [`Kernel::Simd`] demotes to the shared scalar lockstep kernel, so the
//! suite degrades to a tautology rather than a failure — CI runs it both
//! forced-on and forced-off.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ridfa::automata::dfa::{minimize, powerset};
use ridfa::automata::NoCount;
use ridfa::core::csdpa::{
    recognize, recognize_spans, ChunkAutomaton, ConvergentDfaCa, ConvergentRidCa, DfaCa, Executor,
    FeasibleRidCa, FeasibleTable, Kernel, NfaCa, RidCa,
};
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::standard_benchmarks;

/// Chunk starts at odd distances into the text: the SIMD paths promise
/// correctness for **any** byte offset, not just vector-width multiples.
const OFFSETS: [usize; 4] = [0, 1, 13, 63];

/// Long enough that a converging run leaves tens of KiB of single-run
/// tail — well past the stride-walk floor — after the gather phase.
const TEXT_LEN: usize = 64 << 10;

#[test]
fn simd_mappings_match_the_scalar_kernels_at_unaligned_offsets() {
    for b in standard_benchmarks() {
        let dfa = minimize::minimize(&powerset::determinize(&b.nfa));
        let rid = RiDfa::from_nfa(&b.nfa).minimized();
        for (text, label) in [
            ((b.accepted)(TEXT_LEN, 29), "accepted"),
            ((b.rejected)(TEXT_LEN, 29), "rejected"),
        ] {
            // Per-run oracle once per text; the scalar lockstep kernel is
            // already proven identical to it in tests/convergence.rs, so
            // it serves as the (much cheaper) oracle at the other offsets.
            let per_run = DfaCa::new(&dfa).scan(&text, &mut NoCount);
            assert_eq!(
                per_run,
                ConvergentDfaCa::with_kernel(&dfa, Kernel::Simd).scan(&text, &mut NoCount),
                "{} {label}: simd dfa mapping != per-run oracle",
                b.name
            );
            let per_run_rid = RidCa::new(&rid).scan(&text, &mut NoCount);
            assert_eq!(
                per_run_rid,
                ConvergentRidCa::with_kernel(&rid, Kernel::Simd).scan(&text, &mut NoCount),
                "{} {label}: simd rid mapping != per-run oracle",
                b.name
            );
            for off in OFFSETS {
                let chunk = &text[off..];
                assert_eq!(
                    ConvergentDfaCa::with_kernel(&dfa, Kernel::LockstepShared)
                        .scan(chunk, &mut NoCount),
                    ConvergentDfaCa::with_kernel(&dfa, Kernel::Simd).scan(chunk, &mut NoCount),
                    "{} {label}: simd dfa mapping diverged at offset {off}",
                    b.name
                );
                assert_eq!(
                    ConvergentRidCa::with_kernel(&rid, Kernel::LockstepShared)
                        .scan(chunk, &mut NoCount),
                    ConvergentRidCa::with_kernel(&rid, Kernel::Simd).scan(chunk, &mut NoCount),
                    "{} {label}: simd rid mapping diverged at offset {off}",
                    b.name
                );
            }
        }
    }
}

#[test]
fn feasible_start_pruning_composes_with_the_simd_kernel() {
    for b in standard_benchmarks() {
        let rid = RiDfa::from_nfa(&b.nfa).minimized();
        let table = FeasibleTable::build(&rid);
        for (text, label) in [
            ((b.accepted)(TEXT_LEN, 31), "accepted"),
            ((b.rejected)(TEXT_LEN, 31), "rejected"),
        ] {
            for off in OFFSETS {
                let chunk = &text[off..];
                let scalar =
                    FeasibleRidCa::from_inner(RidCa::new(&rid), &table, Kernel::LockstepShared)
                        .scan(chunk, &mut NoCount);
                let simd = FeasibleRidCa::from_inner(RidCa::new(&rid), &table, Kernel::Simd)
                    .scan(chunk, &mut NoCount);
                assert_eq!(
                    scalar, simd,
                    "{} {label}: pruned simd mapping diverged at offset {off}",
                    b.name
                );
            }
        }
    }
}

#[test]
fn simd_verdicts_agree_under_random_span_layouts() {
    // Random uneven spans: tiny slivers (below the SIMD floor, scanned
    // scalar), mid-size chunks (gather phase only) and long chunks
    // (gather + stride walk) all mixed in one recognition.
    let mut rng = StdRng::seed_from_u64(0x51BD);
    for b in standard_benchmarks() {
        let dfa = minimize::minimize(&powerset::determinize(&b.nfa));
        let rid = RiDfa::from_nfa(&b.nfa).minimized();
        let table = FeasibleTable::build(&rid);
        for (text, expected) in [
            ((b.accepted)(2 * TEXT_LEN, 37), true),
            ((b.rejected)(2 * TEXT_LEN, 37), false),
        ] {
            for _ in 0..3 {
                let mut cuts: Vec<usize> = (0..rng.gen_range(2..10usize))
                    .map(|_| rng.gen_range(0..=text.len()))
                    .collect();
                cuts.push(0);
                cuts.push(text.len());
                cuts.sort_unstable();
                cuts.dedup();
                let spans: Vec<_> = cuts.windows(2).map(|w| w[0]..w[1]).collect();
                let conv_dfa = ConvergentDfaCa::with_kernel(&dfa, Kernel::Simd);
                let conv_rid = ConvergentRidCa::with_kernel(&rid, Kernel::Simd);
                let pruned = FeasibleRidCa::from_inner(RidCa::new(&rid), &table, Kernel::Simd);
                for (verdict, ca_name) in [
                    (
                        recognize_spans(&conv_dfa, &text, &spans, Executor::Auto).accepted,
                        "convergent dfa",
                    ),
                    (
                        recognize_spans(&conv_rid, &text, &spans, Executor::Auto).accepted,
                        "convergent rid",
                    ),
                    (
                        recognize_spans(&pruned, &text, &spans, Executor::Auto).accepted,
                        "feasible rid",
                    ),
                ] {
                    assert_eq!(
                        verdict, expected,
                        "{} {ca_name} with simd kernel, spans {spans:?}",
                        b.name
                    );
                }
            }
        }
    }
}

#[test]
fn all_six_chunk_automata_agree_with_simd_in_the_mix() {
    // With AVX2 present, `Auto` routes every chunk here (≥ 10 KiB)
    // through the SIMD kernel for the convergent CAs, while the plain
    // CAs stay scalar — the verdicts must still be unanimous.
    for b in standard_benchmarks() {
        let dfa = minimize::minimize(&powerset::determinize(&b.nfa));
        let rid = RiDfa::from_nfa(&b.nfa).minimized();
        let table = FeasibleTable::build(&rid);
        for (text, expected) in [
            ((b.accepted)(32 << 10, 41), true),
            ((b.rejected)(32 << 10, 41), false),
        ] {
            let verdicts = [
                (
                    "nfa",
                    recognize(&NfaCa::new(&b.nfa), &text, 3, Executor::Auto).accepted,
                ),
                (
                    "dfa",
                    recognize(&DfaCa::new(&dfa), &text, 3, Executor::Auto).accepted,
                ),
                (
                    "rid",
                    recognize(&RidCa::new(&rid), &text, 3, Executor::Auto).accepted,
                ),
                (
                    "convergent dfa",
                    recognize(
                        &ConvergentDfaCa::with_kernel(&dfa, Kernel::Simd),
                        &text,
                        3,
                        Executor::Auto,
                    )
                    .accepted,
                ),
                (
                    "convergent rid",
                    recognize(
                        &ConvergentRidCa::with_kernel(&rid, Kernel::Simd),
                        &text,
                        3,
                        Executor::Auto,
                    )
                    .accepted,
                ),
                (
                    "feasible rid",
                    recognize(
                        &FeasibleRidCa::from_inner(RidCa::new(&rid), &table, Kernel::Simd),
                        &text,
                        3,
                        Executor::Auto,
                    )
                    .accepted,
                ),
            ];
            for (ca_name, verdict) in verdicts {
                assert_eq!(verdict, expected, "{} via {ca_name}", b.name);
            }
        }
    }
}
