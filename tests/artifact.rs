//! Artifact-format trust boundary: binary and text decoders are
//! structurally total on hostile input (typed errors, never a panic,
//! never an unbounded allocation), and an artifact round trip is
//! *behaviorally* identical to a fresh construction.

use ridfa::automata::dfa::{minimize, powerset};
use ridfa::automata::nfa::glushkov;
use ridfa::automata::regex;
use ridfa::automata::serialize::binary::{
    dfa_from_bytes, dfa_to_bytes, peek, seal, ArtifactKind, DecodeError,
};
use ridfa::automata::serialize::{dfa_from_text, dfa_to_text, nfa_from_text, nfa_to_text};
use ridfa::automata::ConstructionBudget;
use ridfa::core::csdpa::{recognize, EnginePlan, Executor, FeasibleTable, RidCa};
use ridfa::core::ridfa::{ridfa_from_bytes, ridfa_to_bytes, ridfa_to_bytes_with_engine, RiDfa};
use ridfa::core::sfa::{Sfa, SfaCa};
use ridfa::faults::XorShift64;

const PATTERNS: &[&str] = &[
    "(a|b)*abb",
    "[ab]*a[ab]{4}",
    "[0-9]+",
    "[a-z]+(-[a-z]+)*",
    "(ab|ba)*(a|b)?",
];

fn rid_for(pattern: &str) -> RiDfa {
    let ast = regex::parse(pattern).unwrap();
    RiDfa::from_nfa(&glushkov::build(&ast).unwrap()).minimized()
}

/// A text for pattern `idx`: a guaranteed member when `member` (so the
/// accepted path is always exercised), alphabet noise otherwise.
fn sample_text(idx: usize, member: bool, rng: &mut XorShift64) -> Vec<u8> {
    let n = (rng.next_u64() % 24) as usize;
    if !member {
        return (0..n)
            .map(|_| b"ab0-xyz9"[(rng.next_u64() % 8) as usize])
            .collect();
    }
    let mut text = Vec::new();
    match idx {
        0 => {
            // (a|b)*abb
            text.extend((0..n).map(|_| b"ab"[(rng.next_u64() % 2) as usize]));
            text.extend_from_slice(b"abb");
        }
        1 => {
            // [ab]*a[ab]{4}
            text.extend((0..n).map(|_| b"ab"[(rng.next_u64() % 2) as usize]));
            text.push(b'a');
            text.extend((0..4).map(|_| b"ab"[(rng.next_u64() % 2) as usize]));
        }
        2 => {
            // [0-9]+
            text.extend((0..n + 1).map(|_| b'0' + (rng.next_u64() % 10) as u8));
        }
        3 => {
            // [a-z]+(-[a-z]+)*
            text.extend_from_slice(b"foo");
            for _ in 0..n % 4 {
                text.extend_from_slice(b"-bar");
            }
        }
        _ => {
            // (ab|ba)*(a|b)?
            for _ in 0..n {
                text.extend_from_slice([&b"ab"[..], b"ba"][(rng.next_u64() % 2) as usize]);
            }
            if rng.next_u64().is_multiple_of(2) {
                text.push(b'a');
            }
        }
    }
    text
}

/// Loaded artifacts recognize exactly like the automata they froze,
/// across random texts (both verdicts exercised).
#[test]
fn artifact_roundtrip_is_behaviorally_identical() {
    let mut rng = XorShift64::new(0xa71f_ac75);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for (idx, pattern) in PATTERNS.iter().enumerate() {
        let rid = rid_for(pattern);
        let loaded = ridfa_from_bytes(&ridfa_to_bytes(&rid)).unwrap().rid;
        assert_eq!(rid, loaded, "{pattern}: loaded RI-DFA differs");
        for round in 0..40 {
            let text = sample_text(idx, round % 2 == 0, &mut rng);
            let fresh = recognize(&RidCa::new(&rid), &text, 3, Executor::Serial).accepted;
            let cold = recognize(&RidCa::new(&loaded), &text, 3, Executor::Serial).accepted;
            assert_eq!(fresh, cold, "{pattern} on {text:?}");
            if fresh {
                accepted += 1;
            } else {
                rejected += 1;
            }
        }
    }
    assert!(
        accepted >= 20,
        "only {accepted} accepted texts — mix too thin"
    );
    assert!(
        rejected >= 20,
        "only {rejected} rejected texts — mix too thin"
    );
}

/// Every single-byte corruption of a sealed artifact is detected: the
/// checksum (or a structural validator behind it) turns silent damage
/// into a typed error, for both artifact kinds.
#[test]
fn corrupted_artifacts_error_and_never_panic() {
    let rid = rid_for("[ab]*a[ab]{4}");
    let rid_bytes = ridfa_to_bytes(&rid);
    let dfa = minimize::minimize(&powerset::determinize(
        &glushkov::build(&regex::parse("[ab]*a[ab]{4}").unwrap()).unwrap(),
    ));
    let dfa_bytes = dfa_to_bytes(&dfa);

    let mut rng = XorShift64::new(0x00dd_ba11);
    let mut detections = 0usize;
    for (bytes, kind) in [(&rid_bytes, "ridfa"), (&dfa_bytes, "dfa")] {
        for _ in 0..400 {
            let mut mutant = bytes.clone();
            let at = (rng.next_u64() % mutant.len() as u64) as usize;
            let bit = 1u8 << (rng.next_u64() % 8);
            mutant[at] ^= bit;
            let damaged = match kind {
                "ridfa" => ridfa_from_bytes(&mutant).is_err(),
                _ => dfa_from_bytes(&mutant).is_err(),
            };
            assert!(
                damaged,
                "{kind}: flip of bit {bit:#x} at {at} went undetected"
            );
            detections += 1;
        }
    }
    assert_eq!(detections, 800);
}

/// Pure noise, truncations, and forged headers decode to typed errors —
/// the decoder allocates nothing it has not validated first.
#[test]
fn hostile_binary_input_is_total() {
    let mut rng = XorShift64::new(0xfeed_beef);
    let mut errors = 0usize;
    for _ in 0..500 {
        let len = (rng.next_u64() % 200) as usize;
        let noise: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        if ridfa_from_bytes(&noise).is_err() {
            errors += 1;
        }
        if dfa_from_bytes(&noise).is_err() {
            errors += 1;
        }
    }
    assert_eq!(errors, 1000, "random noise must never decode");

    // A forged header declaring a huge payload must fail on length
    // validation, not attempt the allocation.
    let rid_bytes = ridfa_to_bytes(&rid_for("(a|b)*abb"));
    for cut in 0..rid_bytes.len() {
        assert!(
            ridfa_from_bytes(&rid_bytes[..cut]).is_err(),
            "truncation at {cut} decoded"
        );
    }
    let mut forged = rid_bytes.clone();
    forged[10..18].copy_from_slice(&u64::MAX.to_le_bytes());
    match ridfa_from_bytes(&forged) {
        Err(DecodeError::Truncated { .. }) | Err(DecodeError::Malformed(_)) => {}
        other => panic!("forged payload length: {other:?}"),
    }
    assert!(peek(&rid_bytes).is_ok());
}

/// An artifact carrying the full v2 engine section: a resolved SFA plan
/// with its tables and a record separator.
fn engine_bearing_artifact(rid: &RiDfa) -> Vec<u8> {
    let sfa = Sfa::build_rid_budgeted(rid, &ConstructionBudget::UNLIMITED).unwrap();
    ridfa_to_bytes_with_engine(rid, EnginePlan::Sfa, None, Some(&sfa), Some(b'\n'))
}

/// Re-seals the v1 payload of a freshly encoded artifact: the default
/// encoder appends an Auto/no-tables engine section of exactly two bytes,
/// so dropping them and patching the (checksum-exempt) version field
/// yields a byte-exact pre-engine-section artifact.
fn forge_v1(rid: &RiDfa) -> Vec<u8> {
    let v2 = ridfa_to_bytes(rid);
    let header_len = v2.len() - peek(&v2).unwrap().payload_len as usize;
    let mut v1 = seal(ArtifactKind::RiDfa, &v2[header_len..v2.len() - 2]);
    v1[6..8].copy_from_slice(&1u16.to_le_bytes());
    v1
}

/// The engine section is inside the trust boundary: every single-bit
/// corruption and every truncation of an engine-bearing artifact is a
/// typed error (checksum, or the plan/flag/table validators behind it) —
/// forged SFA tables can never reach the zero-speculation kernel.
#[test]
fn engine_section_corruption_is_detected() {
    let rid = rid_for("(a|b)*abb");
    let bytes = engine_bearing_artifact(&rid);

    // Sanity: intact, it decodes with the plan and tables attached, and
    // the frozen SFA recognizes exactly like the fresh lockstep engine.
    let loaded = ridfa_from_bytes(&bytes).unwrap();
    assert_eq!(loaded.plan, EnginePlan::Sfa);
    assert_eq!(loaded.separator, Some(b'\n'));
    let sfa = loaded.sfa.as_ref().expect("SFA tables survive the trip");
    let mut rng = XorShift64::new(0x5fa0_5fa0);
    for round in 0..40 {
        let text = sample_text(0, round % 2 == 0, &mut rng);
        let fresh = recognize(&RidCa::new(&rid), &text, 3, Executor::Serial).accepted;
        let frozen = recognize(&SfaCa::new(sfa), &text, 3, Executor::Serial).accepted;
        assert_eq!(fresh, frozen, "frozen SFA differs on {text:?}");
    }

    for _ in 0..400 {
        let mut mutant = bytes.clone();
        let at = (rng.next_u64() % mutant.len() as u64) as usize;
        mutant[at] ^= 1u8 << (rng.next_u64() % 8);
        assert!(
            ridfa_from_bytes(&mutant).is_err(),
            "engine-section artifact: flip at {at} went undetected"
        );
    }
    for cut in 0..bytes.len() {
        assert!(
            ridfa_from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} decoded"
        );
    }
}

/// A pre-engine-section (v1) artifact still decodes: the plan comes back
/// as [`EnginePlan::Auto`] with no precomputed tables, and the automaton
/// is byte-identical — old artifact fleets keep serving across the format
/// bump, re-resolving their engines at registration time.
#[test]
fn v1_artifact_decodes_with_synthesized_auto_plan() {
    for pattern in PATTERNS {
        let rid = rid_for(pattern);
        let v1 = forge_v1(&rid);
        assert_eq!(peek(&v1).unwrap().version, 1);
        let loaded = ridfa_from_bytes(&v1).unwrap();
        assert_eq!(loaded.plan, EnginePlan::Auto, "{pattern}");
        assert!(loaded.sfa.is_none() && loaded.feasible.is_none());
        assert_eq!(loaded.separator, None);
        assert_eq!(loaded.rid, rid, "{pattern}: v1 automaton differs");
    }
    // The v1 payload is checksummed like any other: corruption stays a
    // typed error on the old version too.
    let v1 = forge_v1(&rid_for("(a|b)*abb"));
    let mut rng = XorShift64::new(0x1bee_f001);
    for _ in 0..200 {
        let mut mutant = v1.clone();
        let at = (rng.next_u64() % mutant.len() as u64) as usize;
        mutant[at] ^= 1u8 << (rng.next_u64() % 8);
        assert!(ridfa_from_bytes(&mutant).is_err());
    }
}

/// A feasible-start artifact round-trips its table and the decoder
/// cross-checks it against a fresh build — a stale or hand-edited table
/// (wrong shape *or* wrong bits) is malformed, not silently trusted.
#[test]
fn feasible_tables_are_verified_at_decode() {
    let rid = rid_for("[a-z]+(-[a-z]+)*");
    let table = FeasibleTable::build(&rid);
    let bytes =
        ridfa_to_bytes_with_engine(&rid, EnginePlan::FeasibleStart, Some(&table), None, None);
    let loaded = ridfa_from_bytes(&bytes).unwrap();
    assert_eq!(loaded.plan, EnginePlan::FeasibleStart);
    assert_eq!(loaded.feasible.as_ref(), Some(&table));

    // Pair the table with a *different* pattern's automaton: same encoder,
    // honest checksum, wrong content — must be rejected at decode.
    let other = rid_for("(a|b)*abb");
    let mismatched =
        ridfa_to_bytes_with_engine(&other, EnginePlan::FeasibleStart, Some(&table), None, None);
    assert!(
        ridfa_from_bytes(&mismatched).is_err(),
        "a feasible table for another automaton decoded"
    );
}

/// The text decoders survive seeded random line mutations of valid
/// machine files: every outcome is `Ok` or a typed error, never a panic
/// or an over-allocation.
#[test]
fn mutated_text_machines_are_total() {
    let nfa = glushkov::build(&regex::parse("(a|b)*abb").unwrap()).unwrap();
    let nfa_text = nfa_to_text(&nfa);
    let dfa = minimize::minimize(&powerset::determinize(&nfa));
    let dfa_text = dfa_to_text(&dfa);

    let mut rng = XorShift64::new(0x7e57_7e57);
    let mut ok = 0usize;
    let mut err = 0usize;
    let hostile_tokens = [
        "99999999999999999999",
        "-1",
        "18446744073709551615",
        "trans",
        "nfa 1048577",
        "dfa 2 999",
        "\u{0}",
        "4294967295",
    ];
    for source in [&nfa_text, &dfa_text] {
        for _ in 0..300 {
            let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
            let n = lines.len() as u64;
            match rng.next_u64() % 4 {
                0 => {
                    // Replace a token on a random line with a hostile one.
                    let i = (rng.next_u64() % n) as usize;
                    let token = hostile_tokens[(rng.next_u64() % 8) as usize];
                    let mut parts: Vec<&str> = lines[i].split(' ').collect();
                    let j = (rng.next_u64() % parts.len().max(1) as u64) as usize;
                    parts[j] = token;
                    lines[i] = parts.join(" ");
                }
                1 => {
                    let i = (rng.next_u64() % n) as usize;
                    lines.remove(i);
                }
                2 => {
                    let i = (rng.next_u64() % n) as usize;
                    let line = lines[i].clone();
                    lines.insert(i, line);
                }
                _ => {
                    let i = (rng.next_u64() % n) as usize;
                    lines.truncate(i);
                }
            }
            let mutated = lines.join("\n");
            let outcome_nfa = nfa_from_text(&mutated);
            let outcome_dfa = dfa_from_text(&mutated);
            match (outcome_nfa.is_ok(), outcome_dfa.is_ok()) {
                (false, false) => err += 1,
                _ => ok += 1,
            }
        }
    }
    assert!(ok + err == 600);
    assert!(err >= 100, "only {err} rejections — mutations too gentle");
}
