//! Integration tests for the parallel runtime: all executors (including
//! the pooled session) agree, the persistent pool behaves like
//! `invokeAll` even under panics, batch recognition matches one-by-one
//! recognition, and chunking edge cases (tiny texts, more chunks than
//! bytes, huge chunk counts) are safe.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ridfa::automata::dfa::{minimize, powerset};
use ridfa::automata::NoCount;
use ridfa::core::csdpa::{
    chunk_spans, recognize, ChunkAutomaton, ConvergentDfaCa, ConvergentRidCa, DfaCa, Executor,
    NfaCa, RidCa, Session,
};
use ridfa::core::parallel::{run_indexed, ThreadPool};
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::regen::{random_ast, sample_into, RegenConfig};
use ridfa::workloads::{bible, traffic};

#[test]
fn executors_agree_on_real_workload() {
    let rid = RiDfa::from_nfa(&bible::nfa()).minimized();
    let ca = RidCa::new(&rid);
    let text = bible::text(128 << 10, 21);
    let expected = recognize(&ca, &text, 1, Executor::Serial).accepted;
    assert!(expected);
    let mut session = Session::new(3);
    for chunks in [2usize, 5, 16, 61] {
        for executor in [
            Executor::Serial,
            Executor::PerChunk,
            Executor::Team(1),
            Executor::Team(2),
            Executor::Team(7),
            Executor::Team(64),
            Executor::Auto,
            Executor::Pooled,
        ] {
            assert_eq!(
                recognize(&ca, &text, chunks, executor).accepted,
                expected,
                "{chunks} chunks, {executor:?}"
            );
            assert_eq!(
                session
                    .recognize_with(&ca, &text, chunks, executor)
                    .accepted,
                expected,
                "session, {chunks} chunks, {executor:?}"
            );
        }
    }
}

/// Every CA variant: the pooled session must produce mappings (hence
/// verdicts) identical to the spawning executors, across random regexes,
/// texts and chunk counts — the randomized differential suite extended
/// to the session path.
#[test]
fn pooled_session_matches_spawned_executors_on_random_cases() {
    use rand::rngs::{SmallRng, StdRng};
    use rand::{Rng, SeedableRng};

    let config = RegenConfig {
        alphabet: b"ab".to_vec(),
        max_depth: 3,
        max_width: 3,
        star_percent: 35,
    };
    let mut rng = StdRng::seed_from_u64(0x5E55);
    let mut session = Session::new(2);
    for seed in 0..32u64 {
        let ast = random_ast(&config, seed);
        let nfa = ridfa::automata::nfa::glushkov::build(&ast).unwrap();
        let dfa = minimize::minimize(&powerset::determinize(&nfa));
        let rid = RiDfa::from_nfa(&nfa).minimized();
        let mut sampler = SmallRng::seed_from_u64(seed ^ 0xABCD);
        let mut text = Vec::new();
        for _ in 0..rng.gen_range(1..6usize) {
            sample_into(&ast, &mut sampler, &mut text);
        }
        if rng.gen_ratio(1, 2) && !text.is_empty() {
            let i = rng.gen_range(0..text.len());
            text[i] = if text[i] == b'a' { b'b' } else { b'a' };
        }
        let expected = dfa.accepts(&text);
        let chunks = rng.gen_range(1..16usize);

        let dfa_ca = DfaCa::new(&dfa);
        let rid_ca = RidCa::new(&rid);
        let nfa_ca = NfaCa::new(&nfa);
        let conv_dfa = ConvergentDfaCa::new(&dfa);
        let conv_rid = ConvergentRidCa::new(&rid);
        assert_eq!(
            session.recognize(&dfa_ca, &text, chunks).accepted,
            expected,
            "seed {seed} dfa ({chunks} chunks, ast {ast})"
        );
        assert_eq!(
            session.recognize(&rid_ca, &text, chunks).accepted,
            expected,
            "seed {seed} rid ({chunks} chunks, ast {ast})"
        );
        assert_eq!(
            session.recognize(&nfa_ca, &text, chunks).accepted,
            expected,
            "seed {seed} nfa ({chunks} chunks, ast {ast})"
        );
        assert_eq!(
            session.recognize(&conv_dfa, &text, chunks).accepted,
            expected,
            "seed {seed} dfa+conv ({chunks} chunks, ast {ast})"
        );
        assert_eq!(
            session.recognize(&conv_rid, &text, chunks).accepted,
            expected,
            "seed {seed} rid+conv ({chunks} chunks, ast {ast})"
        );
        // Chunk-level mapping equivalence: a pooled interior scan is the
        // same scan_into the spawning path runs.
        let cut = text.len() / 2;
        assert_eq!(
            dfa_ca.scan(&text[cut..], &mut NoCount),
            conv_dfa.scan(&text[cut..], &mut NoCount),
            "seed {seed} mapping"
        );
    }
}

#[test]
fn pooled_request_is_recorded_as_degraded_by_free_recognizer() {
    // Regression: `recognize(..., Executor::Pooled)` has no pool and runs
    // Auto; the outcome must record the effective shape, and the session
    // must record Pooled.
    let rid = RiDfa::from_nfa(&traffic::nfa()).minimized();
    let ca = RidCa::new(&rid);
    let text = traffic::text(4096, 5);
    let free = recognize(&ca, &text, 4, Executor::Pooled);
    assert_eq!(free.executor, Executor::Auto, "free path degrades");
    let mut session = Session::new(2);
    assert_eq!(
        session.recognize(&ca, &text, 4).executor,
        Executor::Pooled,
        "session path is genuinely pooled"
    );
    assert_eq!(
        session
            .recognize_with(&ca, &text, 4, Executor::Team(2))
            .executor,
        Executor::Team(2),
        "explicit spawning shapes pass through"
    );
}

/// High chunk counts route the session join through the parallel
/// tree-reduce over `compose_into`: verdicts must match the serial
/// oracle for every CA, accepted and rejected, across reduction shapes
/// (power of two, odd, prime).
#[test]
fn tree_reduce_join_matches_serial_at_high_chunk_counts() {
    let nfa = traffic::nfa();
    let dfa = minimize::minimize(&powerset::determinize(&nfa));
    let rid = RiDfa::from_nfa(&nfa).minimized();
    let dfa_ca = DfaCa::new(&dfa);
    let rid_ca = RidCa::new(&rid);
    let conv_dfa = ConvergentDfaCa::new(&dfa);
    let conv_rid = ConvergentRidCa::new(&rid);
    let mut session = Session::new(3);
    for accept in [true, false] {
        let text = if accept {
            traffic::text(96 << 10, 9)
        } else {
            traffic::rejected_text(96 << 10, 9)
        };
        for chunks in [64usize, 127, 128, 200, 333] {
            assert_eq!(
                session.recognize(&dfa_ca, &text, chunks).accepted,
                accept,
                "dfa c={chunks} accept={accept}"
            );
            assert_eq!(
                session.recognize(&rid_ca, &text, chunks).accepted,
                accept,
                "rid c={chunks} accept={accept}"
            );
            assert_eq!(
                session.recognize(&conv_dfa, &text, chunks).accepted,
                accept,
                "dfa+conv c={chunks} accept={accept}"
            );
            assert_eq!(
                session.recognize(&conv_rid, &text, chunks).accepted,
                accept,
                "rid+conv c={chunks} accept={accept}"
            );
        }
    }
}

#[test]
fn batch_path_matches_serial_verdicts_on_traffic() {
    let nfa = traffic::nfa();
    let rid = RiDfa::from_nfa(&nfa).minimized();
    let ca = ConvergentRidCa::new(&rid);
    let texts: Vec<Vec<u8>> = (0..24)
        .map(|i| {
            if i % 3 == 0 {
                traffic::rejected_text(2048, i)
            } else {
                traffic::text(2048, i)
            }
        })
        .collect();
    let mut session = Session::new(3);
    session.warm(&ca, &texts[0]);
    let verdicts = session.recognize_many(&ca, &texts, 4);
    for (i, text) in texts.iter().enumerate() {
        let expected = recognize(&ca, text, 1, Executor::Serial).accepted;
        assert_eq!(verdicts[i], expected, "text {i}");
        assert_eq!(expected, i % 3 != 0, "generator promise, text {i}");
    }
}

#[test]
fn panicking_chunk_scan_does_not_hang_the_session_pool() {
    // End-to-end shape of the headline bugfix: a panic inside pooled
    // work propagates instead of deadlocking, and the pool survives.
    let pool = ThreadPool::new(2);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.invoke_all(6, |i| {
            if i == 4 {
                panic!("chunk scan exploded");
            }
        });
    }));
    assert!(result.is_err());
    let done = AtomicUsize::new(0);
    pool.invoke_all(6, |_| {
        done.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(done.load(Ordering::Relaxed), 6);
}

#[test]
fn run_indexed_handles_skewed_work() {
    // Task 0 is much heavier than the rest; dynamic claiming must still
    // return results in task order.
    let out = run_indexed(4, 40, |i| {
        if i == 0 {
            // A deliberately slow task.
            let mut acc = 0u64;
            for k in 0..2_000_000u64 {
                acc = acc.wrapping_add(k * k);
            }
            (i, acc != 1)
        } else {
            (i, true)
        }
    });
    assert_eq!(out.len(), 40);
    for (i, item) in out.iter().enumerate() {
        assert_eq!(item.0, i);
    }
}

#[test]
fn pool_runs_many_recognitions_concurrently() {
    let rid = Arc::new(RiDfa::from_nfa(&bible::nfa()).minimized());
    let texts: Arc<Vec<Vec<u8>>> = Arc::new((0..16).map(|s| bible::text(8 << 10, s)).collect());
    let accepted = Arc::new(AtomicUsize::new(0));

    let pool = ThreadPool::new(4);
    let (rid2, texts2, accepted2) = (Arc::clone(&rid), Arc::clone(&texts), Arc::clone(&accepted));
    pool.invoke_all(texts.len(), move |i| {
        let ca = RidCa::new(&rid2);
        if recognize(&ca, &texts2[i], 4, Executor::Serial).accepted {
            accepted2.fetch_add(1, Ordering::Relaxed);
        }
    });
    assert_eq!(accepted.load(Ordering::Relaxed), texts.len());
}

#[test]
fn chunk_spans_extreme_cases() {
    assert_eq!(chunk_spans(1, usize::MAX).len(), 1);
    assert_eq!(chunk_spans(usize::from(u16::MAX), 1).len(), 1);
    let spans = chunk_spans(3, 2);
    assert_eq!(spans.iter().map(|s| s.len()).sum::<usize>(), 3);
}

#[test]
fn oversubscription_is_correct() {
    // More chunks than any sane core count: per-chunk threads multiplex.
    let rid = RiDfa::from_nfa(&bible::nfa()).minimized();
    let ca = RidCa::new(&rid);
    let text = bible::text(64 << 10, 3);
    let out = recognize(&ca, &text, 256, Executor::PerChunk);
    assert!(out.accepted);
    assert_eq!(out.num_chunks, 256);
}
