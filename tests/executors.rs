//! Integration tests for the parallel runtime: all executors agree, the
//! persistent pool behaves like `invokeAll`, and chunking edge cases
//! (tiny texts, more chunks than bytes, huge chunk counts) are safe.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ridfa::core::csdpa::{chunk_spans, recognize, Executor, RidCa};
use ridfa::core::parallel::{run_indexed, ThreadPool};
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::bible;

#[test]
fn executors_agree_on_real_workload() {
    let rid = RiDfa::from_nfa(&bible::nfa()).minimized();
    let ca = RidCa::new(&rid);
    let text = bible::text(128 << 10, 21);
    let expected = recognize(&ca, &text, 1, Executor::Serial).accepted;
    assert!(expected);
    for chunks in [2usize, 5, 16, 61] {
        for executor in [
            Executor::Serial,
            Executor::PerChunk,
            Executor::Team(1),
            Executor::Team(2),
            Executor::Team(7),
            Executor::Team(64),
        ] {
            assert_eq!(
                recognize(&ca, &text, chunks, executor).accepted,
                expected,
                "{chunks} chunks, {executor:?}"
            );
        }
    }
}

#[test]
fn run_indexed_handles_skewed_work() {
    // Task 0 is much heavier than the rest; dynamic claiming must still
    // return results in task order.
    let out = run_indexed(4, 40, |i| {
        if i == 0 {
            // A deliberately slow task.
            let mut acc = 0u64;
            for k in 0..2_000_000u64 {
                acc = acc.wrapping_add(k * k);
            }
            (i, acc != 1)
        } else {
            (i, true)
        }
    });
    assert_eq!(out.len(), 40);
    for (i, item) in out.iter().enumerate() {
        assert_eq!(item.0, i);
    }
}

#[test]
fn pool_runs_many_recognitions_concurrently() {
    let rid = Arc::new(RiDfa::from_nfa(&bible::nfa()).minimized());
    let texts: Arc<Vec<Vec<u8>>> = Arc::new((0..16).map(|s| bible::text(8 << 10, s)).collect());
    let accepted = Arc::new(AtomicUsize::new(0));

    let pool = ThreadPool::new(4);
    let (rid2, texts2, accepted2) = (Arc::clone(&rid), Arc::clone(&texts), Arc::clone(&accepted));
    pool.invoke_all(texts.len(), move |i| {
        let ca = RidCa::new(&rid2);
        if recognize(&ca, &texts2[i], 4, Executor::Serial).accepted {
            accepted2.fetch_add(1, Ordering::Relaxed);
        }
    });
    assert_eq!(accepted.load(Ordering::Relaxed), texts.len());
}

#[test]
fn chunk_spans_extreme_cases() {
    assert_eq!(chunk_spans(1, usize::MAX).len(), 1);
    assert_eq!(chunk_spans(usize::from(u16::MAX), 1).len(), 1);
    let spans = chunk_spans(3, 2);
    assert_eq!(spans.iter().map(|s| s.len()).sum::<usize>(), 3);
}

#[test]
fn oversubscription_is_correct() {
    // More chunks than any sane core count: per-chunk threads multiplex.
    let rid = RiDfa::from_nfa(&bible::nfa()).minimized();
    let ca = RidCa::new(&rid);
    let text = bible::text(64 << 10, 3);
    let out = recognize(&ca, &text, 256, Executor::PerChunk);
    assert!(out.accepted);
    assert_eq!(out.num_chunks, 256);
}
