//! Sharded-serving behaviors that have no single-shard equivalent: live
//! spec reload without dropping connections, eviction landing under an
//! in-flight scan (typed error, never a stale verdict), the offload lane
//! keeping small requests responsive next to a multi-megabyte body, and
//! the prebuilt-registry/multi-shard misconfiguration being rejected up
//! front.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use ridfa::automata::ConstructionBudget;
use ridfa::core::csdpa::{CancelToken, PatternRegistry, PatternSpec, RegistryConfig};
use ridfa::core::serve::protocol::{self, Status};
use ridfa::core::serve::{ServeConfig, Server};

fn registry_config() -> RegistryConfig {
    RegistryConfig {
        num_workers: 2,
        block_size: 256,
        ..RegistryConfig::default()
    }
}

/// A throwaway on-disk spec file the watcher can re-read; removed on drop.
struct SpecFile {
    path: PathBuf,
}

impl SpecFile {
    fn new(tag: &str, text: &str) -> SpecFile {
        let path =
            std::env::temp_dir().join(format!("ridfa-spec-{tag}-{}.txt", std::process::id()));
        std::fs::write(&path, text).unwrap();
        SpecFile { path }
    }

    fn rewrite(&self, text: &str) {
        std::fs::write(&self.path, text).unwrap();
    }
}

impl Drop for SpecFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn spec(text: &str) -> PatternSpec {
    PatternSpec::parse(text, &ConstructionBudget::UNLIMITED, None).unwrap()
}

/// Rewriting the spec file swaps a pattern and adds a new one on a live
/// 2-shard server: the open connection sees the new verdicts without
/// ever being dropped, and every shard reports the applied generation.
#[test]
fn hot_reload_swaps_patterns_without_dropping_connections() {
    let file = SpecFile::new("reload", "digits [0-9]+\n");
    let mut server = Server::bind_spec_file(
        "127.0.0.1:0",
        file.path.clone(),
        registry_config(),
        ServeConfig {
            shards: 2,
            reload_interval: Some(Duration::from_millis(20)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let cancel = CancelToken::new();
    server.set_cancel(cancel.clone());
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let response = protocol::query(&mut stream, "digits", b"123").unwrap();
    assert_eq!(response.status, Status::Accepted);

    // Swap digits to a stricter pattern and add a brand-new id.
    file.rewrite("digits [0-9]{5}\nword [a-z]+\n");

    // Poll the *same* connection until the new generation answers: "123"
    // flips from Accepted to Rejected the moment the shard applies it.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let response = protocol::query(&mut stream, "digits", b"123").unwrap();
        if response.status == Status::Rejected {
            break;
        }
        assert_eq!(response.status, Status::Accepted, "unexpected verdict");
        assert!(Instant::now() < deadline, "reload never reached the shard");
        std::thread::sleep(Duration::from_millis(5));
    }
    let response = protocol::query(&mut stream, "word", b"hello").unwrap();
    assert_eq!(response.status, Status::Accepted, "new pattern not served");
    let response = protocol::query(&mut stream, "digits", b"12345").unwrap();
    assert_eq!(response.status, Status::Accepted);
    drop(stream);

    cancel.cancel();
    let report = server_thread.join().unwrap();
    assert_eq!(report.reload_errors, 0);
    assert_eq!(report.shards.len(), 2);
    for shard in &report.shards {
        assert!(
            shard.reload.generations >= 1,
            "shard {} never applied the reload",
            shard.shard
        );
        assert!(shard.reload.inserted >= 2, "shard {}", shard.shard);
        assert!(shard.reload.evicted >= 1, "shard {}", shard.shard);
        assert_eq!(shard.reload.failed, 0, "shard {}", shard.shard);
    }
    // One connection, held across the reload — never dropped.
    assert_eq!(report.tally.connections, 1);
    assert_eq!(report.connections.len(), 1);
    report.verify().expect("reconciliation invariants");
}

/// Satellite: a reload that evicts the pattern *under an in-flight scan*
/// answers a typed `Protocol` error for that request — never a panic,
/// never a verdict mixing two generations — and the connection survives
/// to serve the next request against the new automaton.
#[test]
fn eviction_under_in_flight_scan_is_typed_and_keeps_the_connection() {
    const BODY: usize = 100_000;
    const FIRST: usize = 10_000;

    let file = SpecFile::new("evict", "digits [0-9]+\n");
    let mut server = Server::bind_spec_file(
        "127.0.0.1:0",
        file.path.clone(),
        registry_config(),
        ServeConfig {
            shards: 1,
            reload_interval: Some(Duration::from_millis(20)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let cancel = CancelToken::new();
    server.set_cancel(cancel.clone());
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let response = protocol::query(&mut stream, "digits", b"123").unwrap();
    assert_eq!(response.status, Status::Accepted);

    // Send the header plus the first slice of a large inline body: the
    // shard starts scanning and the scan binds to the current epoch.
    let frame = protocol::encode_request("digits", &vec![b'7'; BODY]).unwrap();
    let header = frame.len() - BODY;
    stream.write_all(&frame[..header + FIRST]).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // Reload lands mid-scan: digits is evicted and re-inserted with a
    // fresh epoch while the request above is still incomplete.
    file.rewrite("digits [0-9]{5}\n");
    std::thread::sleep(Duration::from_millis(400));

    // The remainder drains; the verdict is the typed reload error with
    // the full body accounted for, not a cross-generation answer.
    stream.write_all(&frame[header + FIRST..]).unwrap();
    let response = protocol::read_response(&mut stream).unwrap();
    assert_eq!(response.status, Status::Protocol, "reload mid-scan");
    assert_eq!(response.scanned, BODY as u64, "body fully drained");

    // Same connection, next request: served by the new generation.
    let response = protocol::query(&mut stream, "digits", b"12345").unwrap();
    assert_eq!(response.status, Status::Accepted);
    let response = protocol::query(&mut stream, "digits", b"123").unwrap();
    assert_eq!(response.status, Status::Rejected);
    drop(stream);

    cancel.cancel();
    let report = server_thread.join().unwrap();
    assert_eq!(report.tally.protocol_errors, 1, "{:?}", report.tally);
    assert_eq!(report.tally.accepted, 2);
    assert_eq!(report.tally.rejected, 1);
    assert_eq!(report.tally.connections, 1, "connection was dropped");
    assert!(report.shards[0].reload.generations >= 1);
    report.verify().expect("reconciliation invariants");
}

/// A multi-megabyte body above `offload_bytes` goes through the offload
/// lane in bounded slices: a small inline request on another connection
/// gets its verdict while the big body is still being pumped, instead of
/// waiting behind it.
#[test]
fn offloaded_big_body_does_not_stall_small_requests() {
    const BIG: usize = 4 << 20;

    let mut server = Server::bind_spec(
        "127.0.0.1:0",
        spec("digits [0-9]+\n"),
        registry_config(),
        ServeConfig {
            shards: 1,
            offload_bytes: 1024,
            offload_tick_bytes: 4096,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let cancel = CancelToken::new();
    server.set_cancel(cancel.clone());
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    // Establish the small-request connection first, so its acceptance
    // cannot race the big body's lifetime.
    let mut small = TcpStream::connect(addr).unwrap();
    small
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let response = protocol::query(&mut small, "digits", b"1").unwrap();
    assert_eq!(response.status, Status::Accepted);

    let big_started = AtomicBool::new(false);
    let big_done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            let frame = protocol::encode_request("digits", &vec![b'7'; BIG]).unwrap();
            stream.write_all(&frame[..64 * 1024]).unwrap();
            big_started.store(true, Ordering::SeqCst);
            stream.write_all(&frame[64 * 1024..]).unwrap();
            let response = protocol::read_response(&mut stream).unwrap();
            assert_eq!(response.status, Status::Accepted);
            assert_eq!(response.scanned, BIG as u64);
            big_done.store(true, Ordering::SeqCst);
        });

        // Once the big body is in flight (the lane pumps it 4 KiB per
        // tick, so it has ~1000 ticks to go), a small request must clear
        // in a handful of ticks.
        while !big_started.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut small_before_big = 0u64;
        while !big_done.load(Ordering::SeqCst) {
            let response = protocol::query(&mut small, "digits", b"42").unwrap();
            assert_eq!(response.status, Status::Accepted);
            if !big_done.load(Ordering::SeqCst) {
                small_before_big += 1;
            }
        }
        assert!(
            small_before_big >= 1,
            "no small request finished while the big body was pumping"
        );
    });
    drop(small);

    cancel.cancel();
    let report = server_thread.join().unwrap();
    assert!(report.tally.bytes >= BIG as u64);
    report.verify().expect("reconciliation invariants");
}

/// A prebuilt registry cannot be replicated across shards (it is one
/// mutable instance, not a spec to build replicas from): asking for
/// `shards > 1` on `Server::bind` is rejected up front with
/// `InvalidInput`, not discovered by a wedged shard later.
#[test]
fn prebuilt_registry_with_multiple_shards_is_rejected() {
    let mut registry = PatternRegistry::new(registry_config());
    registry.insert_regex("digits", "[0-9]+").unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        registry,
        ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let err = server.run().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}
