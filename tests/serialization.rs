//! Round-trip tests of the text serialization across crates: benchmark
//! NFAs and synthetic Ondrik machines survive save/load bit-exactly, and
//! the reloaded machines drive the recognizer identically.

use ridfa::automata::dfa::powerset;
use ridfa::automata::serialize::{dfa_from_text, dfa_to_text, nfa_from_text, nfa_to_text};
use ridfa::core::csdpa::{recognize, Executor, RidCa};
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::ondrik::{machine, OndrikConfig};

#[test]
fn benchmark_nfas_roundtrip() {
    for b in ridfa::workloads::standard_benchmarks() {
        let text = nfa_to_text(&b.nfa);
        let back = nfa_from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(b.nfa, back, "{}", b.name);
    }
}

#[test]
fn ondrik_machines_roundtrip() {
    let config = OndrikConfig {
        state_range: (8, 40),
        ..OndrikConfig::default()
    };
    for i in 0..10u64 {
        let nfa = machine(&config, 500 + i);
        let back = nfa_from_text(&nfa_to_text(&nfa)).unwrap();
        assert_eq!(nfa, back, "machine {i}");
    }
}

#[test]
fn dfas_roundtrip_and_recognize_identically() {
    for b in ridfa::workloads::standard_benchmarks().into_iter().take(3) {
        let dfa = powerset::determinize(&b.nfa);
        let back = dfa_from_text(&dfa_to_text(&dfa)).unwrap();
        assert_eq!(dfa.num_states(), back.num_states());
        assert_eq!(dfa.start(), back.start());
        let text = (b.accepted)(8 << 10, 3);
        assert_eq!(dfa.accepts(&text), back.accepts(&text), "{}", b.name);
        let rejected = (b.rejected)(8 << 10, 3);
        assert_eq!(
            dfa.accepts(&rejected),
            back.accepts(&rejected),
            "{}",
            b.name
        );
    }
}

#[test]
fn reloaded_nfa_drives_the_parallel_recognizer() {
    let b = &ridfa::workloads::standard_benchmarks()[2]; // bible
    let reloaded = nfa_from_text(&nfa_to_text(&b.nfa)).unwrap();
    let rid = RiDfa::from_nfa(&reloaded).minimized();
    let ca = RidCa::new(&rid);
    let text = (b.accepted)(64 << 10, 4);
    assert!(recognize(&ca, &text, 8, Executor::Team(4)).accepted);
    let bad = (b.rejected)(64 << 10, 4);
    assert!(!recognize(&ca, &bad, 8, Executor::Team(4)).accepted);
}

#[test]
fn serialized_form_is_human_readable() {
    let b = &ridfa::workloads::standard_benchmarks()[0];
    let text = nfa_to_text(&b.nfa);
    assert!(text.starts_with("nfa "));
    assert!(text.contains("start "));
    assert!(text.contains("final "));
    assert!(text.trim_end().ends_with("end"));
}
