//! Randomized property tests for the RI-DFA itself: the structural
//! theorems of Sect. 3 of the paper, checked on random expressions and on
//! the synthetic Ondrik machines. Formerly a proptest suite; rewritten as
//! seeded loops so the workspace carries no external test framework.

use ridfa::automata::dfa::minimize::partition_refine;
use ridfa::automata::dfa::{minimize, powerset};
use ridfa::automata::nfa::glushkov;
use ridfa::automata::StateId;
use ridfa::core::ridfa::RiDfa;
use ridfa::workloads::ondrik::{machine, OndrikConfig};
use ridfa::workloads::regen::{random_ast, RegenConfig};

const CASES: u64 = 64;

fn config() -> RegenConfig {
    RegenConfig {
        alphabet: b"abc".to_vec(),
        max_depth: 3,
        max_width: 3,
        star_percent: 30,
    }
}

#[test]
fn interface_size_equals_nfa_size_before_minimization() {
    for seed in 0..CASES {
        let nfa = glushkov::build(&random_ast(&config(), seed)).unwrap();
        let rid = RiDfa::from_nfa(&nfa);
        assert_eq!(rid.interface().len(), nfa.num_states(), "seed {seed}");
        // Every interface state is a singleton of its NFA state.
        for q in 0..nfa.num_states() as StateId {
            assert_eq!(rid.content(rid.entry(q)), &[q], "seed {seed}");
        }
    }
}

#[test]
fn minimized_interface_never_grows() {
    for seed in 0..CASES {
        let nfa = glushkov::build(&random_ast(&config(), seed)).unwrap();
        let rid = RiDfa::from_nfa(&nfa);
        let min = rid.minimized();
        assert!(
            min.interface().len() <= rid.interface().len(),
            "seed {seed}"
        );
        // Downgrading only: the minimized interface is a subset.
        for p in min.interface() {
            assert!(rid.interface().contains(p), "seed {seed}");
        }
        // Transition graph untouched.
        assert_eq!(min.num_states(), rid.num_states(), "seed {seed}");
    }
}

#[test]
fn delegates_are_nerode_equivalent() {
    // The Sect. 3.4 soundness condition: every delegate recognizes the
    // same language as the entry it replaces.
    for seed in 0..CASES {
        let nfa = glushkov::build(&random_ast(&config(), seed)).unwrap();
        let min = RiDfa::from_nfa(&nfa).minimized();
        let classes = partition_refine(
            min.num_states(),
            min.stride(),
            |s, c| min.next_class(s, c),
            |s| min.is_final(s),
        );
        for q in 0..min.num_nfa_states() as StateId {
            assert_eq!(
                classes[min.entry(q) as usize],
                classes[min.delegate(q) as usize],
                "seed {seed}, NFA state {q}"
            );
        }
    }
}

#[test]
fn ridfa_contains_the_reachable_powerset() {
    // Every subset reachable from {q0} exists in the RI-DFA, so the
    // RI-DFA is never smaller than the (unminimized) reachable DFA.
    for seed in 0..CASES {
        let nfa = glushkov::build(&random_ast(&config(), seed)).unwrap();
        let dfa = powerset::determinize(&nfa);
        let rid = RiDfa::from_nfa(&nfa);
        assert!(
            rid.num_live_states() >= dfa.num_live_states(),
            "seed {seed}"
        );
    }
}

#[test]
fn interface_bounded_by_minimal_nfa_languages() {
    // Corollary of Th. 3.4: the minimized interface cannot exceed the
    // number of *distinct residual languages* of single NFA states —
    // measured here as Nerode classes of the entry states.
    for seed in 0..CASES {
        let nfa = glushkov::build(&random_ast(&config(), seed)).unwrap();
        let rid = RiDfa::from_nfa(&nfa);
        let min = rid.minimized();
        let classes = partition_refine(
            rid.num_states(),
            rid.stride(),
            |s, c| rid.next_class(s, c),
            |s| rid.is_final(s),
        );
        let mut entry_classes: Vec<u32> = (0..nfa.num_states() as StateId)
            .map(|q| classes[rid.entry(q) as usize])
            .collect();
        entry_classes.sort_unstable();
        entry_classes.dedup();
        assert_eq!(min.interface().len(), entry_classes.len(), "seed {seed}");
    }
}

#[test]
fn validate_holds_for_random_machines() {
    for seed in 0..CASES {
        let nfa = glushkov::build(&random_ast(&config(), seed)).unwrap();
        let rid = RiDfa::from_nfa(&nfa);
        assert_eq!(rid.validate(), Ok(()), "seed {seed}");
        assert_eq!(rid.minimized().validate(), Ok(()), "seed {seed}");
    }
}

#[test]
fn ondrik_machines_satisfy_rid_theorems() {
    let config = OndrikConfig {
        state_range: (12, 40),
        ..OndrikConfig::default()
    };
    for i in 0..12u64 {
        let nfa = machine(&config, 1000 + i);
        let rid = RiDfa::from_nfa(&nfa);
        assert_eq!(rid.validate(), Ok(()), "machine {i}");
        assert_eq!(rid.interface().len(), nfa.num_states(), "machine {i}");
        let min = rid.minimized();
        assert!(min.interface().len() <= rid.interface().len());
        // Serial recognition agrees with the NFA on probe strings.
        for probe in [
            &b""[..],
            b"a",
            b"ab",
            b"abc",
            b"aabbcc",
            b"cccc",
            b"abababababab",
            b"bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb",
        ] {
            assert_eq!(
                nfa.accepts(probe),
                min.accepts(probe),
                "machine {i} on {probe:?}"
            );
        }
    }
}

#[test]
fn dfa_state_explosion_vs_interface_growth() {
    // Theorem-level headline: on the regexp family, the minimal DFA is
    // 2^(k+1) while the interface is k+2, for every k.
    for k in [3usize, 5, 7] {
        let nfa = ridfa::workloads::regexp::nfa(k);
        let min = minimize::minimize(&powerset::determinize(&nfa));
        let rid = RiDfa::from_nfa(&nfa).minimized();
        assert_eq!(min.num_live_states(), 1 << (k + 1));
        assert_eq!(rid.interface().len(), k + 2);
    }
}
